#include "dsp/wavelet.hpp"

#include <cmath>
#include <stdexcept>

namespace sidis::dsp {

namespace {
constexpr double kMorletOmega0 = 5.0;
}

double mother_wavelet(WaveletFamily family, double t) {
  switch (family) {
    case WaveletFamily::kMorlet: {
      // Real Morlet with the small admissibility correction term dropped
      // (negligible at w0 = 5) -- standard SCA practice.
      return std::exp(-0.5 * t * t) * std::cos(kMorletOmega0 * t);
    }
    case WaveletFamily::kRicker: {
      const double t2 = t * t;
      return (1.0 - t2) * std::exp(-0.5 * t2);
    }
  }
  throw std::invalid_argument("mother_wavelet: unknown family");
}

Cwt::Cwt(CwtConfig config) : config_(config) {
  if (config_.num_scales == 0) throw std::invalid_argument("Cwt: num_scales must be > 0");
  if (!(config_.min_scale > 0.0) || config_.max_scale < config_.min_scale) {
    throw std::invalid_argument("Cwt: invalid scale range");
  }
  scales_.resize(config_.num_scales);
  if (config_.num_scales == 1) {
    scales_[0] = config_.min_scale;
  } else if (config_.log_spacing) {
    const double ratio = std::pow(config_.max_scale / config_.min_scale,
                                  1.0 / static_cast<double>(config_.num_scales - 1));
    double s = config_.min_scale;
    for (auto& v : scales_) {
      v = s;
      s *= ratio;
    }
  } else {
    const double step = (config_.max_scale - config_.min_scale) /
                        static_cast<double>(config_.num_scales - 1);
    for (std::size_t j = 0; j < scales_.size(); ++j) {
      scales_[j] = config_.min_scale + step * static_cast<double>(j);
    }
  }

  kernels_.resize(scales_.size());
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    const double s = scales_[j];
    const auto radius =
        static_cast<std::ptrdiff_t>(std::ceil(config_.kernel_radius * s));
    std::vector<double>& k = kernels_[j];
    k.resize(static_cast<std::size_t>(2 * radius + 1));
    double energy = 0.0;
    for (std::ptrdiff_t n = -radius; n <= radius; ++n) {
      const double v = mother_wavelet(config_.family, static_cast<double>(n) / s);
      k[static_cast<std::size_t>(n + radius)] = v;
      energy += v * v;
    }
    // L2 normalization keeps coefficient magnitudes comparable across scales
    // (the 1/sqrt(s) convention folded into the sampled kernel).
    const double inv = energy > 0.0 ? 1.0 / std::sqrt(energy) : 0.0;
    for (double& v : k) v *= inv;
  }
}

Scalogram Cwt::transform(const std::vector<double>& trace) const {
  const std::size_t n = trace.size();
  Scalogram out(scales_.size(), n, 0.0);
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    const std::vector<double>& k = kernels_[j];
    const auto radius = static_cast<std::ptrdiff_t>(k.size() / 2);
    auto row = out.row(j);
    for (std::size_t t = 0; t < n; ++t) {
      // Correlation of the trace with the kernel centred at t; zero outside.
      const auto tt = static_cast<std::ptrdiff_t>(t);
      const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -tt);
      const std::ptrdiff_t hi =
          std::min<std::ptrdiff_t>(radius, static_cast<std::ptrdiff_t>(n) - 1 - tt);
      double acc = 0.0;
      const double* kp = k.data() + (lo + radius);
      const double* xp = trace.data() + (tt + lo);
      for (std::ptrdiff_t d = lo; d <= hi; ++d) acc += *kp++ * *xp++;
      row[t] = acc;
    }
  }
  return out;
}

double Cwt::coefficient(const std::vector<double>& trace, std::size_t j,
                        std::size_t k) const {
  const std::vector<double>& kern = kernels_.at(j);
  const auto radius = static_cast<std::ptrdiff_t>(kern.size() / 2);
  const auto n = static_cast<std::ptrdiff_t>(trace.size());
  const auto t = static_cast<std::ptrdiff_t>(k);
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -t);
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(radius, n - 1 - t);
  double acc = 0.0;
  const double* kp = kern.data() + (lo + radius);
  const double* xp = trace.data() + (t + lo);
  for (std::ptrdiff_t d = lo; d <= hi; ++d) acc += *kp++ * *xp++;
  return acc;
}

double Cwt::pseudo_frequency(std::size_t j) const {
  const double s = scales_.at(j);
  switch (config_.family) {
    case WaveletFamily::kMorlet:
      return kMorletOmega0 / (2.0 * 3.14159265358979323846 * s);
    case WaveletFamily::kRicker:
      // Peak of the Ricker spectrum: f = sqrt(2)/(2 pi s) * ~1.0 factor.
      return std::sqrt(2.0) / (2.0 * 3.14159265358979323846 * s);
  }
  throw std::invalid_argument("pseudo_frequency: unknown family");
}

}  // namespace sidis::dsp

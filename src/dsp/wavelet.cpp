#include "dsp/wavelet.hpp"

#include "linalg/lanes.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace sidis::dsp {

namespace {
constexpr double kMorletOmega0 = 5.0;

/// Measured direct-vs-spectral crossover (see DESIGN.md): a direct row costs
/// N*W multiply-adds, a spectral row one padded multiply plus (half of, rows
/// are packed in pairs) one inverse FFT, ~ L*log2(L) butterfly units.  The
/// constant absorbs the relative cost of a butterfly vs a MAC on this
/// substrate; calibrated with bench_throughput's BM_CwtFullGrid* cases.
constexpr double kSpectralCrossover = 1.5;

/// Sparse extraction computes a full spectral row to serve one scale's
/// points, without a guaranteed pair to share the inverse FFT, so it needs
/// twice the work per row before the FFT pays off.
constexpr double kSparseCrossover = 2.0 * kSpectralCrossover;

double log2d(std::size_t n) { return std::log2(static_cast<double>(n)); }

/// out[f] = a[f] * b[f] on the raw interleaved-double views: std::complex
/// loads/stores and operator* (Annex-G fixups) are an order of magnitude
/// slower here -- see FftPlan::run.
void multiply_spectra(const ComplexVector& a, const ComplexVector& b,
                      ComplexVector& out) {
  const std::size_t n = a.size();
  const double* ad = reinterpret_cast<const double*>(a.data());
  const double* bd = reinterpret_cast<const double*>(b.data());
  double* od = reinterpret_cast<double*>(out.data());
  for (std::size_t f = 0; f < 2 * n; f += 2) {
    const double ar = ad[f], ai = ad[f + 1];
    const double br = bd[f], bi = bd[f + 1];
    od[f] = ar * br - ai * bi;
    od[f + 1] = ar * bi + ai * br;
  }
}
}  // namespace

double mother_wavelet(WaveletFamily family, double t) {
  switch (family) {
    case WaveletFamily::kMorlet: {
      // Real Morlet with the small admissibility correction term dropped
      // (negligible at w0 = 5) -- standard SCA practice.
      return std::exp(-0.5 * t * t) * std::cos(kMorletOmega0 * t);
    }
    case WaveletFamily::kRicker: {
      const double t2 = t * t;
      return (1.0 - t2) * std::exp(-0.5 * t2);
    }
  }
  throw std::invalid_argument("mother_wavelet: unknown family");
}

/// One packed spectral row pair: spec = FFT(pad(k_a) + i * pad(k_b)), so the
/// inverse transform of spec * FFT(trace) carries scale_a's correlation row
/// in its real part and scale_b's in its imaginary part.
struct PackedPair {
  std::size_t scale_a = 0;
  std::size_t scale_b = 0;     ///< == scale_a when the pair is a solo leftover
  bool has_b = false;
  ComplexVector spec;
};

struct Cwt::SpectralBank {
  std::size_t trace_len = 0;
  std::size_t fft_size = 0;
  FftPlan plan{1};
  std::vector<PackedPair> pairs;
  /// Per scale: index into `pairs` (SIZE_MAX = direct scale) and which half
  /// of the packed inverse transform holds this scale's row.
  std::vector<std::size_t> pair_index;
  std::vector<std::uint8_t> pair_is_imag;
  bool any_spectral = false;
};

struct Cwt::BankCache {
  std::mutex mutex;
  std::vector<std::shared_ptr<const SpectralBank>> banks;  ///< keyed by trace_len
};

Cwt::Cwt(CwtConfig config) : config_(config), banks_(std::make_shared<BankCache>()) {
  if (config_.num_scales == 0) throw std::invalid_argument("Cwt: num_scales must be > 0");
  if (!(config_.min_scale > 0.0) || config_.max_scale < config_.min_scale) {
    throw std::invalid_argument("Cwt: invalid scale range");
  }
  scales_.resize(config_.num_scales);
  if (config_.num_scales == 1) {
    scales_[0] = config_.min_scale;
  } else if (config_.log_spacing) {
    const double ratio = std::pow(config_.max_scale / config_.min_scale,
                                  1.0 / static_cast<double>(config_.num_scales - 1));
    double s = config_.min_scale;
    for (auto& v : scales_) {
      v = s;
      s *= ratio;
    }
  } else {
    const double step = (config_.max_scale - config_.min_scale) /
                        static_cast<double>(config_.num_scales - 1);
    for (std::size_t j = 0; j < scales_.size(); ++j) {
      scales_[j] = config_.min_scale + step * static_cast<double>(j);
    }
  }

  kernels_.resize(scales_.size());
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    const double s = scales_[j];
    const auto radius =
        static_cast<std::ptrdiff_t>(std::ceil(config_.kernel_radius * s));
    std::vector<double>& k = kernels_[j];
    k.resize(static_cast<std::size_t>(2 * radius + 1));
    double energy = 0.0;
    for (std::ptrdiff_t n = -radius; n <= radius; ++n) {
      const double v = mother_wavelet(config_.family, static_cast<double>(n) / s);
      k[static_cast<std::size_t>(n + radius)] = v;
      energy += v * v;
    }
    // L2 normalization keeps coefficient magnitudes comparable across scales
    // (the 1/sqrt(s) convention folded into the sampled kernel).
    const double inv = energy > 0.0 ? 1.0 / std::sqrt(energy) : 0.0;
    for (double& v : k) v *= inv;
  }
}

const Cwt::SpectralBank& Cwt::bank_for(std::size_t trace_len) const {
  std::lock_guard lock(banks_->mutex);
  for (const auto& b : banks_->banks) {
    if (b->trace_len == trace_len) return *b;
  }

  auto bank = std::make_shared<SpectralBank>();
  bank->trace_len = trace_len;
  std::size_t max_radius = 0;
  for (const auto& k : kernels_) max_radius = std::max(max_radius, k.size() / 2);
  // L >= trace_len + max_radius keeps the circular convolution free of
  // wraparound inside the emitted [0, trace_len) window.
  bank->fft_size = next_pow2(trace_len + max_radius);
  const std::size_t L = bank->fft_size;
  bank->plan = FftPlan(L);
  bank->pair_index.assign(scales_.size(), SIZE_MAX);
  bank->pair_is_imag.assign(scales_.size(), 0);

  std::vector<std::size_t> spectral_scales;
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    const bool spectral =
        config_.backend == CwtBackend::kSpectral ||
        (config_.backend == CwtBackend::kAuto &&
         static_cast<double>(trace_len) * static_cast<double>(kernels_[j].size()) >
             kSpectralCrossover * static_cast<double>(L) * log2d(L));
    if (spectral) spectral_scales.push_back(j);
  }
  bank->any_spectral = !spectral_scales.empty();

  // The padded kernel is stored time-reversed -- circular convolution with
  // the reversed kernel is exactly the correlation the direct path computes.
  const auto place = [L](ComplexVector& buf, const std::vector<double>& k, bool imag) {
    const auto radius = static_cast<std::ptrdiff_t>(k.size() / 2);
    for (std::ptrdiff_t d = -radius; d <= radius; ++d) {
      const std::size_t idx =
          d <= 0 ? static_cast<std::size_t>(-d) : L - static_cast<std::size_t>(d);
      const double v = k[static_cast<std::size_t>(d + radius)];
      if (imag) {
        buf[idx] += Complex(0.0, v);
      } else {
        buf[idx] += Complex(v, 0.0);
      }
    }
  };

  for (std::size_t i = 0; i < spectral_scales.size(); i += 2) {
    PackedPair pair;
    pair.scale_a = spectral_scales[i];
    pair.spec.assign(L, Complex(0.0, 0.0));
    place(pair.spec, kernels_[pair.scale_a], /*imag=*/false);
    if (i + 1 < spectral_scales.size()) {
      pair.scale_b = spectral_scales[i + 1];
      pair.has_b = true;
      place(pair.spec, kernels_[pair.scale_b], /*imag=*/true);
    }
    bank->plan.forward(pair.spec);
    const std::size_t pi = bank->pairs.size();
    bank->pair_index[pair.scale_a] = pi;
    if (pair.has_b) {
      bank->pair_index[pair.scale_b] = pi;
      bank->pair_is_imag[pair.scale_b] = 1;
    }
    bank->pairs.push_back(std::move(pair));
  }

  banks_->banks.push_back(std::move(bank));
  return *banks_->banks.back();
}

void Cwt::direct_row(const std::vector<double>& trace, std::size_t j,
                     std::span<double> out) const {
  const std::vector<double>& k = kernels_[j];
  const auto radius = static_cast<std::ptrdiff_t>(k.size() / 2);
  const std::size_t n = trace.size();
  for (std::size_t t = 0; t < n; ++t) {
    // Correlation of the trace with the kernel centred at t; zero outside.
    const auto tt = static_cast<std::ptrdiff_t>(t);
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -tt);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(radius, static_cast<std::ptrdiff_t>(n) - 1 - tt);
    double acc = 0.0;
    const double* kp = k.data() + (lo + radius);
    const double* xp = trace.data() + (tt + lo);
    for (std::ptrdiff_t d = lo; d <= hi; ++d) acc += *kp++ * *xp++;
    out[t] = acc;
  }
}

Scalogram Cwt::transform(const std::vector<double>& trace) const {
  CwtWorkspace ws;
  return transform(trace, ws);
}

Scalogram Cwt::transform(const std::vector<double>& trace, CwtWorkspace& ws) const {
  const std::size_t n = trace.size();
  Scalogram out(scales_.size(), n, 0.0);
  if (n == 0) return out;

  if (config_.backend == CwtBackend::kDirect) {
    for (std::size_t j = 0; j < scales_.size(); ++j) direct_row(trace, j, out.row(j));
    return out;
  }

  const SpectralBank& bank = bank_for(n);
  if (bank.any_spectral) {
    const std::size_t L = bank.fft_size;
    ws.freq_.assign(L, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i) ws.freq_[i] = Complex(trace[i], 0.0);
    bank.plan.forward(ws.freq_);
    ws.work_.resize(L);
    for (const PackedPair& pair : bank.pairs) {
      multiply_spectra(ws.freq_, pair.spec, ws.work_);
      bank.plan.inverse(ws.work_);
      auto row_a = out.row(pair.scale_a);
      if (pair.has_b) {
        auto row_b = out.row(pair.scale_b);
        for (std::size_t t = 0; t < n; ++t) {
          row_a[t] = ws.work_[t].real();
          row_b[t] = ws.work_[t].imag();
        }
      } else {
        for (std::size_t t = 0; t < n; ++t) row_a[t] = ws.work_[t].real();
      }
    }
  }
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    if (bank.pair_index[j] == SIZE_MAX) direct_row(trace, j, out.row(j));
  }
  return out;
}

std::size_t Cwt::marshal(TraceBatch traces, std::vector<double>& soa) {
  if (traces.empty()) {
    throw std::invalid_argument("Cwt: empty trace batch");
  }
  const std::size_t n = traces.front()->size();
  const std::size_t lanes = traces.size();
  for (const std::vector<double>* t : traces) {
    if (t == nullptr || t->size() != n) {
      throw std::invalid_argument("Cwt: batch traces must share one length");
    }
  }
  soa.resize(n * lanes);
  // Lane innermost: the writes stream through soa once while the reads fan
  // out over `lanes` sequential sources -- the prefetcher tracks all of them,
  // where the transposed order (one read stream, lane-strided writes) touched
  // a fresh cache line per element.
  double* __restrict dst = soa.data();
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) *dst++ = (*traces[l])[t];
  }
  return n;
}

namespace {

/// Batched multiply_spectra: every lane's spectrum times one shared packed
/// kernel spectrum, identical per-lane arithmetic to the scalar routine.
void multiply_spectra_batch(const BatchComplex& a, const ComplexVector& b,
                            BatchComplex& out) {
  const std::size_t lanes = a.lanes;
  const std::size_t n = b.size();
  const double* bd = reinterpret_cast<const double*>(b.data());
  const double* __restrict are = a.re.data();
  const double* __restrict aim = a.im.data();
  double* __restrict ore = out.re.data();
  double* __restrict oim = out.im.data();
  for (std::size_t f = 0; f < n; ++f) {
    const double br = bd[2 * f], bi = bd[2 * f + 1];
    const std::size_t base = f * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double ar = are[base + l], ai = aim[base + l];
      ore[base + l] = ar * br - ai * bi;
      oim[base + l] = ar * bi + ai * br;
    }
  }
}

}  // namespace

std::vector<Scalogram> Cwt::transform_batch(TraceBatch traces,
                                            CwtBatchWorkspace& ws) const {
  const std::size_t lanes = traces.size();
  const std::size_t n = marshal(traces, ws.soa_);
  std::vector<Scalogram> out;
  out.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) out.emplace_back(scales_.size(), n, 0.0);
  if (n == 0) return out;

  const double* __restrict soa = ws.soa_.data();

  // Lane-parallel direct correlation of scale j: the kernel tap streams once
  // per batch and each tap broadcasts over a block of lanes, accumulating in
  // the same tap order as the scalar direct_row.  Full linalg::kLaneTile
  // blocks keep their accumulators in registers across the tap loop (see
  // lanes.hpp); the sub-tile remainder keeps the plain lane-innermost form.
  const auto direct_row_batch = [&](std::size_t j) {
    const std::vector<double>& k = kernels_[j];
    const auto radius = static_cast<std::ptrdiff_t>(k.size() / 2);
    ws.row_.resize(n * lanes);
    double* __restrict row = ws.row_.data();
    for (std::size_t t = 0; t < n; ++t) {
      const auto tt = static_cast<std::ptrdiff_t>(t);
      const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -tt);
      const std::ptrdiff_t hi =
          std::min<std::ptrdiff_t>(radius, static_cast<std::ptrdiff_t>(n) - 1 - tt);
      const std::size_t taps = static_cast<std::size_t>(hi - lo + 1);
      double* __restrict acc = row + t * lanes;
      const double* kern_lo = k.data() + (lo + radius);
      const double* soa_lo = soa + static_cast<std::size_t>(tt + lo) * lanes;
      std::size_t l0 = 0;
      for (; l0 + linalg::kLaneTile <= lanes; l0 += linalg::kLaneTile) {
        linalg::LaneTile tile;
        const double* xp = soa_lo + l0;
        for (std::size_t d = 0; d < taps; ++d) {
          tile.mul_add(kern_lo[d], xp);
          xp += lanes;
        }
        tile.store(acc + l0);
      }
      if (l0 < lanes) {
        for (std::size_t l = l0; l < lanes; ++l) acc[l] = 0.0;
        const double* xp = soa_lo;
        for (std::size_t d = 0; d < taps; ++d) {
          const double kv = kern_lo[d];
          for (std::size_t l = l0; l < lanes; ++l) acc[l] += kv * xp[l];
          xp += lanes;
        }
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      auto dst = out[l].row(j);
      for (std::size_t t = 0; t < n; ++t) dst[t] = row[t * lanes + l];
    }
  };

  if (config_.backend == CwtBackend::kDirect) {
    for (std::size_t j = 0; j < scales_.size(); ++j) direct_row_batch(j);
    return out;
  }

  const SpectralBank& bank = bank_for(n);
  if (bank.any_spectral) {
    const std::size_t L = bank.fft_size;
    ws.freq_.assign(L, lanes);
    for (std::size_t i = 0; i < n; ++i) {
      double* dst = ws.freq_.re.data() + i * lanes;
      const double* src = soa + i * lanes;
      for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
    }
    bank.plan.forward_batch(ws.freq_);
    ws.work_.assign(L, lanes);
    for (const PackedPair& pair : bank.pairs) {
      multiply_spectra_batch(ws.freq_, pair.spec, ws.work_);
      bank.plan.inverse_batch(ws.work_);
      for (std::size_t l = 0; l < lanes; ++l) {
        auto row_a = out[l].row(pair.scale_a);
        for (std::size_t t = 0; t < n; ++t) row_a[t] = ws.work_.re[t * lanes + l];
        if (pair.has_b) {
          auto row_b = out[l].row(pair.scale_b);
          for (std::size_t t = 0; t < n; ++t) row_b[t] = ws.work_.im[t * lanes + l];
        }
      }
    }
  }
  for (std::size_t j = 0; j < scales_.size(); ++j) {
    if (bank.pair_index[j] == SIZE_MAX) direct_row_batch(j);
  }
  return out;
}

linalg::Matrix Cwt::coefficients_batch(TraceBatch traces,
                                       std::span<const std::size_t> js,
                                       std::span<const std::size_t> ks,
                                       CwtBatchWorkspace& ws) const {
  const std::size_t n = marshal(traces, ws.soa_);
  // ws.soa_ is only read below coefficients_soa (freq_/work_/acc_ are the
  // scratch it writes), so handing it in as the "external" block is safe.
  return coefficients_soa(ws.soa_, n, traces.size(), js, ks, ws);
}

linalg::Matrix Cwt::coefficients_soa(std::span<const double> soa_block,
                                     std::size_t n, std::size_t lanes,
                                     std::span<const std::size_t> js,
                                     std::span<const std::size_t> ks,
                                     CwtBatchWorkspace& ws) const {
  if (js.size() != ks.size()) {
    throw std::invalid_argument("Cwt::coefficients_batch: js/ks length mismatch");
  }
  if (soa_block.size() != n * lanes) {
    throw std::invalid_argument("Cwt::coefficients_soa: block size mismatch");
  }
  linalg::Matrix out(js.size(), lanes, 0.0);
  const double* __restrict soa = soa_block.data();

  // Identical per-scale direct/spectral decision to the scalar path: the
  // predicate only consumes per-window point counts and the trace length,
  // both shared across the batch, so every lane takes the same route (and
  // the amortized FFT must NOT move the crossover -- bit-identity pins each
  // lane to the exact arithmetic the scalar path would run).
  std::vector<std::size_t> counts(scales_.size(), 0);
  for (std::size_t j : js) counts.at(j)++;

  std::vector<std::uint8_t> row_done;
  if (config_.backend != CwtBackend::kDirect && n > 0) {
    const SpectralBank* bank = &bank_for(n);
    std::vector<std::uint8_t> want_pair(bank->pairs.size(), 0);
    const bool force = config_.backend == CwtBackend::kSpectral;
    bool any = false;
    for (std::size_t j = 0; j < scales_.size(); ++j) {
      if (counts[j] == 0 || bank->pair_index[j] == SIZE_MAX) continue;
      const std::size_t L = bank->fft_size;
      if (force || static_cast<double>(counts[j]) *
                           static_cast<double>(kernels_[j].size()) >
                       kSparseCrossover * static_cast<double>(L) * log2d(L)) {
        want_pair[bank->pair_index[j]] = 1;
        any = true;
      }
    }
    if (any) {
      const std::size_t L = bank->fft_size;
      ws.freq_.assign(L, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        double* dst = ws.freq_.re.data() + i * lanes;
        const double* src = soa + i * lanes;
        for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
      }
      bank->plan.forward_batch(ws.freq_);
      ws.work_.assign(L, lanes);
      row_done.assign(scales_.size(), 0);
      for (std::size_t p = 0; p < bank->pairs.size(); ++p) {
        if (!want_pair[p]) continue;
        const PackedPair& pair = bank->pairs[p];
        multiply_spectra_batch(ws.freq_, pair.spec, ws.work_);
        bank->plan.inverse_batch(ws.work_);
        row_done[pair.scale_a] = 1;
        if (pair.has_b) row_done[pair.scale_b] = 2;
        for (std::size_t i = 0; i < js.size(); ++i) {
          if (js[i] == pair.scale_a && ks[i] < n) {
            const double* src = ws.work_.re.data() + ks[i] * lanes;
            double* dst = out.row(i).data();
            for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
          } else if (pair.has_b && js[i] == pair.scale_b && ks[i] < n) {
            const double* src = ws.work_.im.data() + ks[i] * lanes;
            double* dst = out.row(i).data();
            for (std::size_t l = 0; l < lanes; ++l) dst[l] = src[l];
          }
        }
      }
    }
  }

  // Remaining points: one lane-parallel correlation per point, each lane
  // accumulating its own sum in scalar tap order (bit-identical to
  // Cwt::coefficient on that lane).  Full linalg::kLaneTile blocks of lanes
  // ride in registers across the whole tap loop (see lanes.hpp for why that
  // beats memory accumulators); the sub-tile remainder keeps the plain
  // lane-innermost form -- at under one tile of lanes the store traffic is
  // bounded and a partial tile would not pay for itself.
  for (std::size_t i = 0; i < js.size(); ++i) {
    if (!row_done.empty() && row_done[js[i]] != 0) continue;
    const std::vector<double>& kern = kernels_.at(js[i]);
    const auto radius = static_cast<std::ptrdiff_t>(kern.size() / 2);
    const auto nn = static_cast<std::ptrdiff_t>(n);
    const auto t = static_cast<std::ptrdiff_t>(ks[i]);
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -t);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(radius, nn - 1 - t);
    const std::size_t taps = static_cast<std::size_t>(hi - lo + 1);
    const double* kern_lo = kern.data() + (lo + radius);
    const double* soa_lo = soa + static_cast<std::size_t>(t + lo) * lanes;
    double* __restrict dst = out.row(i).data();
    std::size_t l0 = 0;
    for (; l0 + linalg::kLaneTile <= lanes; l0 += linalg::kLaneTile) {
      linalg::LaneTile acc;
      const double* x = soa_lo + l0;
      for (std::size_t d = 0; d < taps; ++d) {
        acc.mul_add(kern_lo[d], x);
        x += lanes;
      }
      acc.store(dst + l0);
    }
    if (l0 < lanes) {
      for (std::size_t l = l0; l < lanes; ++l) dst[l] = 0.0;
      const double* x = soa_lo;
      for (std::size_t d = 0; d < taps; ++d) {
        const double kv = kern_lo[d];
        for (std::size_t l = l0; l < lanes; ++l) dst[l] += kv * x[l];
        x += lanes;
      }
    }
  }
  return out;
}

double Cwt::coefficient(const std::vector<double>& trace, std::size_t j,
                        std::size_t k) const {
  const std::vector<double>& kern = kernels_.at(j);
  const auto radius = static_cast<std::ptrdiff_t>(kern.size() / 2);
  const auto n = static_cast<std::ptrdiff_t>(trace.size());
  const auto t = static_cast<std::ptrdiff_t>(k);
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(-radius, -t);
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(radius, n - 1 - t);
  double acc = 0.0;
  const double* kp = kern.data() + (lo + radius);
  const double* xp = trace.data() + (t + lo);
  for (std::ptrdiff_t d = lo; d <= hi; ++d) acc += *kp++ * *xp++;
  return acc;
}

linalg::Vector Cwt::coefficients(const std::vector<double>& trace,
                                 std::span<const std::size_t> js,
                                 std::span<const std::size_t> ks,
                                 CwtWorkspace& ws) const {
  if (js.size() != ks.size()) {
    throw std::invalid_argument("Cwt::coefficients: js/ks length mismatch");
  }
  linalg::Vector out(js.size());
  const std::size_t n = trace.size();

  // Count points per scale to find rows where a spectral sweep beats
  // point-by-point correlation.
  std::vector<std::size_t> counts(scales_.size(), 0);
  for (std::size_t j : js) counts.at(j)++;

  std::vector<std::uint8_t> row_done;
  if (config_.backend != CwtBackend::kDirect && n > 0) {
    const SpectralBank* bank = &bank_for(n);
    std::vector<std::uint8_t> want_pair(bank->pairs.size(), 0);
    const bool force = config_.backend == CwtBackend::kSpectral;
    bool any = false;
    for (std::size_t j = 0; j < scales_.size(); ++j) {
      if (counts[j] == 0 || bank->pair_index[j] == SIZE_MAX) continue;
      const std::size_t L = bank->fft_size;
      if (force || static_cast<double>(counts[j]) *
                           static_cast<double>(kernels_[j].size()) >
                       kSparseCrossover * static_cast<double>(L) * log2d(L)) {
        want_pair[bank->pair_index[j]] = 1;
        any = true;
      }
    }
    if (any) {
      const std::size_t L = bank->fft_size;
      ws.freq_.assign(L, Complex(0.0, 0.0));
      for (std::size_t i = 0; i < n; ++i) ws.freq_[i] = Complex(trace[i], 0.0);
      bank->plan.forward(ws.freq_);
      ws.work_.resize(L);
      row_done.assign(scales_.size(), 0);
      for (std::size_t p = 0; p < bank->pairs.size(); ++p) {
        if (!want_pair[p]) continue;
        const PackedPair& pair = bank->pairs[p];
        multiply_spectra(ws.freq_, pair.spec, ws.work_);
        bank->plan.inverse(ws.work_);
        // Both halves of the packed transform are free once it ran; serve
        // the partner scale's points from it too.
        row_done[pair.scale_a] = 1;
        if (pair.has_b) row_done[pair.scale_b] = 2;
        for (std::size_t i = 0; i < js.size(); ++i) {
          if (js[i] == pair.scale_a && ks[i] < n) {
            out[i] = ws.work_[ks[i]].real();
          } else if (pair.has_b && js[i] == pair.scale_b && ks[i] < n) {
            out[i] = ws.work_[ks[i]].imag();
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < js.size(); ++i) {
    if (row_done.empty() || row_done[js[i]] == 0) {
      out[i] = coefficient(trace, js[i], ks[i]);
    }
  }
  return out;
}

double Cwt::pseudo_frequency(std::size_t j) const {
  const double s = scales_.at(j);
  switch (config_.family) {
    case WaveletFamily::kMorlet:
      return kMorletOmega0 / (2.0 * std::numbers::pi * s);
    case WaveletFamily::kRicker:
      // Peak of the Ricker spectrum: f = sqrt(2)/(2 pi s) * ~1.0 factor.
      return std::sqrt(2.0) / (2.0 * std::numbers::pi * s);
  }
  throw std::invalid_argument("pseudo_frequency: unknown family");
}

}  // namespace sidis::dsp

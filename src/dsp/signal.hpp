// Scalar signal-processing helpers shared by the acquisition simulator and
// the feature pipeline: normalization, detrending, filtering, alignment.
#pragma once

#include <cstddef>
#include <vector>

namespace sidis::dsp {

/// Arithmetic mean; 0 for an empty signal.
double mean(const std::vector<double>& x);

/// Unbiased sample variance (denominator n-1); 0 when n < 2.
double variance(const std::vector<double>& x);

/// sqrt(variance).
double stddev(const std::vector<double>& x);

/// (x - mean) / std, with std clamped away from zero by `eps`.
std::vector<double> zscore(const std::vector<double>& x, double eps = 1e-12);

/// Affine map of x onto [0, 1]; constant signals map to all-zeros.
std::vector<double> min_max_normalize(const std::vector<double>& x);

/// Removes the least-squares straight line from x.
std::vector<double> detrend_linear(const std::vector<double>& x);

/// Centered moving average with window `w` (clamped at the edges; w >= 1).
std::vector<double> moving_average(const std::vector<double>& x, std::size_t w);

/// Single-pole IIR low-pass, y[n] = a*x[n] + (1-a)*y[n-1], with the smoothing
/// factor derived from a -3 dB cutoff expressed as a fraction of the sample
/// rate.  Models the scope's analog bandwidth limit.
std::vector<double> lowpass_single_pole(const std::vector<double>& x,
                                        double cutoff_fraction);

/// Uniform mid-rise quantizer with 2^bits levels over [lo, hi]; values are
/// clamped into range first.  Models the scope ADC.
std::vector<double> quantize(const std::vector<double>& x, int bits, double lo,
                             double hi);

/// Integer lag in [-max_lag, max_lag] maximizing the cross-correlation of
/// `x` against `ref`.  Used to re-align traces on the trigger edge.
int best_alignment_lag(const std::vector<double>& ref,
                       const std::vector<double>& x, int max_lag);

/// Shifts x by `lag` samples (positive = delay), zero-filling the gap.
std::vector<double> shift(const std::vector<double>& x, int lag);

/// Element-wise difference a - b; sizes must match.
std::vector<double> subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Indices of strict local maxima of x with value >= `min_value`.
std::vector<std::size_t> local_maxima(const std::vector<double>& x,
                                      double min_value);

}  // namespace sidis::dsp

#include "dsp/signal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sidis::dsp {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev(const std::vector<double>& x) { return std::sqrt(variance(x)); }

std::vector<double> zscore(const std::vector<double>& x, double eps) {
  const double m = mean(x);
  const double s = std::max(stddev(x), eps);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - m) / s;
  return out;
}

std::vector<double> min_max_normalize(const std::vector<double>& x) {
  if (x.empty()) return {};
  const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
  const double lo = *lo_it, hi = *hi_it;
  std::vector<double> out(x.size(), 0.0);
  if (hi - lo <= 0.0) return out;
  const double inv = 1.0 / (hi - lo);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - lo) * inv;
  return out;
}

std::vector<double> detrend_linear(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n < 2) return std::vector<double>(n, 0.0);
  // Least-squares fit y = a + b t, t = 0..n-1.
  const double nn = static_cast<double>(n);
  const double t_mean = (nn - 1.0) / 2.0;
  const double y_mean = mean(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = static_cast<double>(i) - t_mean;
    num += dt * (x[i] - y_mean);
    den += dt * dt;
  }
  const double b = den > 0.0 ? num / den : 0.0;
  const double a = y_mean - b * t_mean;
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - (a + b * static_cast<double>(i));
  return out;
}

std::vector<double> moving_average(const std::vector<double>& x, std::size_t w) {
  if (w == 0) throw std::invalid_argument("moving_average: window must be >= 1");
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  const auto half = static_cast<std::ptrdiff_t>(w / 2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ii = static_cast<std::ptrdiff_t>(i);
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, ii - half);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(n) - 1, ii + half);
    double acc = 0.0;
    for (std::ptrdiff_t k = lo; k <= hi; ++k) acc += x[static_cast<std::size_t>(k)];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> lowpass_single_pole(const std::vector<double>& x,
                                        double cutoff_fraction) {
  if (!(cutoff_fraction > 0.0)) {
    throw std::invalid_argument("lowpass_single_pole: cutoff must be > 0");
  }
  if (cutoff_fraction >= 0.5) return x;  // Nyquist or above: pass-through
  // Standard bilinear-free EMA design: a = 1 - exp(-2 pi fc).
  const double a = 1.0 - std::exp(-2.0 * std::numbers::pi * cutoff_fraction);
  std::vector<double> out(x.size());
  double y = x.empty() ? 0.0 : x.front();
  for (std::size_t i = 0; i < x.size(); ++i) {
    y += a * (x[i] - y);
    out[i] = y;
  }
  return out;
}

std::vector<double> quantize(const std::vector<double>& x, int bits, double lo,
                             double hi) {
  if (bits < 1 || bits > 24) throw std::invalid_argument("quantize: bits out of range");
  if (!(hi > lo)) throw std::invalid_argument("quantize: hi must exceed lo");
  const double levels = static_cast<double>((1u << bits) - 1u);
  const double step = (hi - lo) / levels;
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double c = std::clamp(x[i], lo, hi);
    out[i] = lo + std::round((c - lo) / step) * step;
  }
  return out;
}

int best_alignment_lag(const std::vector<double>& ref, const std::vector<double>& x,
                       int max_lag) {
  if (ref.size() != x.size() || ref.empty()) {
    throw std::invalid_argument("best_alignment_lag: equal non-zero sizes required");
  }
  const auto n = static_cast<std::ptrdiff_t>(ref.size());
  double best = -1e300;
  int best_lag = 0;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const std::ptrdiff_t j = i + lag;
      if (j < 0 || j >= n) continue;
      acc += ref[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)];
    }
    if (acc > best) {
      best = acc;
      best_lag = lag;
    }
  }
  return best_lag;
}

std::vector<double> shift(const std::vector<double>& x, int lag) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  std::vector<double> out(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t j = i - lag;
    if (j >= 0 && j < n) out[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(j)];
  }
  return out;
}

std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("subtract: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<std::size_t> local_maxima(const std::vector<double>& x, double min_value) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    if (x[i] > x[i - 1] && x[i] > x[i + 1] && x[i] >= min_value) out.push_back(i);
  }
  return out;
}

}  // namespace sidis::dsp

#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sidis::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_core(ComplexVector& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (Complex& c : x) c *= inv;
  }
}
}  // namespace

void fft(ComplexVector& x) { fft_core(x, /*inverse=*/false); }
void ifft(ComplexVector& x) { fft_core(x, /*inverse=*/true); }

ComplexVector rfft(const std::vector<double>& x) {
  ComplexVector c(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex(x[i], 0.0);
  fft(c);
  return c;
}

std::vector<double> magnitude_spectrum(const std::vector<double>& x) {
  const ComplexVector c = rfft(x);
  std::vector<double> mag(c.size() / 2 + 1);
  for (std::size_t i = 0; i < mag.size(); ++i) mag[i] = std::abs(c[i]);
  return mag;
}

std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;

  // Direct convolution wins below ~64 taps of combined work.
  if (a.size() * b.size() <= 4096) {
    std::vector<double> out(out_len, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
    }
    return out;
  }

  const std::size_t n = next_pow2(out_len);
  ComplexVector fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  fft(fa);
  fft(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  ifft(fa);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace sidis::dsp

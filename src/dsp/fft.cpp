#include "dsp/fft.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace sidis::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation, stored as (i, j) swap pairs with i < j so the
  // hot path neither recomputes reversals nor visits fixed points.
  bitrev_.reserve(n / 2);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      bitrev_.push_back(static_cast<std::uint32_t>(i));
      bitrev_.push_back(static_cast<std::uint32_t>(j));
    }
  }

  // Stage-concatenated forward twiddles: the stage with butterfly span `len`
  // stores w_len^k = exp(-2 pi i k / len) for k in [0, len/2) at offset
  // len/2 - 1 (offsets 1 + 2 + ... + len/4 sum to len/2 - 1).  Total n - 1.
  if (n > 1) {
    twiddle_.resize(n - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len / 2;
      const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
      Complex* w = twiddle_.data() + (half - 1);
      for (std::size_t k = 0; k < half; ++k) {
        w[k] = Complex(std::cos(ang * static_cast<double>(k)),
                       std::sin(ang * static_cast<double>(k)));
      }
    }
  }
}

void FftPlan::run(ComplexVector& x, bool inverse) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan: buffer/plan size mismatch");

  // The whole transform runs on the raw interleaved-double view of the
  // buffer ([complex.numbers.general] guarantees the layout): going through
  // std::complex loads/stores and operator* here costs an order of magnitude
  // -- the aggregate copies defeat the optimizer and operator* carries the
  // Annex-G NaN/inf fixup (__muldc3).
  double* xd = reinterpret_cast<double*>(x.data());
  const double* twd = reinterpret_cast<const double*>(twiddle_.data());

  for (std::size_t p = 0; p < bitrev_.size(); p += 2) {
    const std::size_t i = 2 * bitrev_[p], j = 2 * bitrev_[p + 1];
    std::swap(xd[i], xd[j]);
    std::swap(xd[i + 1], xd[j + 1]);
  }

  // Stages run fused in pairs (a radix-2^2 kernel): each fused pass touches
  // every point once instead of twice, halving the load/store traffic that
  // dominates an in-cache radix-2 sweep.  W_{4h}^{k+h} = -i * W_{4h}^k, so
  // the second stage's upper-half twiddles are a free rotation.
  const double sign = inverse ? -1.0 : 1.0;
  std::size_t len = 2;
  for (; len * 2 <= n_; len <<= 2) {
    const std::size_t h = len / 2;
    const double* w1 = twd + 2 * (h - 1);      // W_{2h}^k, k in [0, h)
    const double* w2 = twd + 2 * (2 * h - 1);  // W_{4h}^k, k in [0, 2h)
    for (std::size_t i = 0; i < n_; i += 4 * h) {
      double* p0 = xd + 2 * i;
      double* p1 = xd + 2 * (i + h);
      double* p2 = xd + 2 * (i + 2 * h);
      double* p3 = xd + 2 * (i + 3 * h);
      for (std::size_t k = 0; k < h; ++k) {
        const double w1r = w1[2 * k], w1i = sign * w1[2 * k + 1];
        const double w2r = w2[2 * k], w2i = sign * w2[2 * k + 1];
        // First stage: (a,b) and (c,d) butterflies with W_{2h}^k.
        const double br = p1[2 * k], bi = p1[2 * k + 1];
        const double t1r = br * w1r - bi * w1i;
        const double t1i = br * w1i + bi * w1r;
        const double ar = p0[2 * k], ai = p0[2 * k + 1];
        const double ur = ar + t1r, ui = ai + t1i;
        const double vr = ar - t1r, vi = ai - t1i;
        const double dr = p3[2 * k], di = p3[2 * k + 1];
        const double t2r = dr * w1r - di * w1i;
        const double t2i = dr * w1i + di * w1r;
        const double cr = p2[2 * k], ci = p2[2 * k + 1];
        const double pr = cr + t2r, pi = ci + t2i;
        const double qr = cr - t2r, qi = ci - t2i;
        // Second stage: (u,p) with W_{4h}^k, (v,q) with -i * W_{4h}^k
        // (conjugated for the inverse).
        const double s1r = pr * w2r - pi * w2i;
        const double s1i = pr * w2i + pi * w2r;
        const double s2r0 = qr * w2r - qi * w2i;
        const double s2i0 = qr * w2i + qi * w2r;
        const double s2r = sign * s2i0;
        const double s2i = -sign * s2r0;
        p0[2 * k] = ur + s1r;
        p0[2 * k + 1] = ui + s1i;
        p2[2 * k] = ur - s1r;
        p2[2 * k + 1] = ui - s1i;
        p1[2 * k] = vr + s2r;
        p1[2 * k + 1] = vi + s2i;
        p3[2 * k] = vr - s2r;
        p3[2 * k + 1] = vi - s2i;
      }
    }
  }
  if (len <= n_) {
    // Odd stage count: one plain radix-2 pass finishes the transform.
    const std::size_t half = len / 2;
    const double* tw = twd + 2 * (half - 1);
    for (std::size_t i = 0; i < n_; i += len) {
      double* a = xd + 2 * i;
      double* b = xd + 2 * (i + half);
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[2 * k];
        const double wi = sign * tw[2 * k + 1];
        const double br = b[2 * k], bi = b[2 * k + 1];
        const double vr = br * wr - bi * wi;
        const double vi = br * wi + bi * wr;
        const double ar = a[2 * k], ai = a[2 * k + 1];
        a[2 * k] = ar + vr;
        a[2 * k + 1] = ai + vi;
        b[2 * k] = ar - vr;
        b[2 * k + 1] = ai - vi;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < 2 * n_; ++i) xd[i] *= inv;
  }
}

void FftPlan::run_batch(BatchComplex& x, bool inverse) const {
  if (x.lanes == 0 || x.re.size() != n_ * x.lanes || x.im.size() != x.re.size()) {
    throw std::invalid_argument("FftPlan: batch buffer/plan size mismatch");
  }
  const std::size_t lanes = x.lanes;
  double* __restrict xr = x.re.data();
  double* __restrict xi = x.im.data();
  const double* twd = reinterpret_cast<const double*>(twiddle_.data());

  // Same schedule as the scalar run(), with the lane dimension innermost:
  // every lane sees the identical sequence of butterflies in the identical
  // order, so lane l's transform is bit-for-bit the scalar transform of lane
  // l, while loads of the (shared) twiddles amortize across the batch and
  // the per-lane loops are plain contiguous streams the compiler vectorizes.
  for (std::size_t p = 0; p < bitrev_.size(); p += 2) {
    double* ar = xr + bitrev_[p] * lanes;
    double* ai = xi + bitrev_[p] * lanes;
    double* br = xr + bitrev_[p + 1] * lanes;
    double* bi = xi + bitrev_[p + 1] * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      std::swap(ar[l], br[l]);
      std::swap(ai[l], bi[l]);
    }
  }

  const double sign = inverse ? -1.0 : 1.0;
  std::size_t len = 2;
  for (; len * 2 <= n_; len <<= 2) {
    const std::size_t h = len / 2;
    const double* w1 = twd + 2 * (h - 1);      // W_{2h}^k, k in [0, h)
    const double* w2 = twd + 2 * (2 * h - 1);  // W_{4h}^k, k in [0, 2h)
    for (std::size_t i = 0; i < n_; i += 4 * h) {
      for (std::size_t k = 0; k < h; ++k) {
        const double w1r = w1[2 * k], w1i = sign * w1[2 * k + 1];
        const double w2r = w2[2 * k], w2i = sign * w2[2 * k + 1];
        double* __restrict p0r = xr + (i + k) * lanes;
        double* __restrict p0i = xi + (i + k) * lanes;
        double* __restrict p1r = xr + (i + h + k) * lanes;
        double* __restrict p1i = xi + (i + h + k) * lanes;
        double* __restrict p2r = xr + (i + 2 * h + k) * lanes;
        double* __restrict p2i = xi + (i + 2 * h + k) * lanes;
        double* __restrict p3r = xr + (i + 3 * h + k) * lanes;
        double* __restrict p3i = xi + (i + 3 * h + k) * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
          const double br = p1r[l], bi = p1i[l];
          const double t1r = br * w1r - bi * w1i;
          const double t1i = br * w1i + bi * w1r;
          const double ar = p0r[l], ai = p0i[l];
          const double ur = ar + t1r, ui = ai + t1i;
          const double vr = ar - t1r, vi = ai - t1i;
          const double dr = p3r[l], di = p3i[l];
          const double t2r = dr * w1r - di * w1i;
          const double t2i = dr * w1i + di * w1r;
          const double cr = p2r[l], ci = p2i[l];
          const double pr = cr + t2r, pi = ci + t2i;
          const double qr = cr - t2r, qi = ci - t2i;
          const double s1r = pr * w2r - pi * w2i;
          const double s1i = pr * w2i + pi * w2r;
          const double s2r0 = qr * w2r - qi * w2i;
          const double s2i0 = qr * w2i + qi * w2r;
          const double s2r = sign * s2i0;
          const double s2i = -sign * s2r0;
          p0r[l] = ur + s1r;
          p0i[l] = ui + s1i;
          p2r[l] = ur - s1r;
          p2i[l] = ui - s1i;
          p1r[l] = vr + s2r;
          p1i[l] = vi + s2i;
          p3r[l] = vr - s2r;
          p3i[l] = vi - s2i;
        }
      }
    }
  }
  if (len <= n_) {
    const std::size_t half = len / 2;
    const double* tw = twd + 2 * (half - 1);
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[2 * k];
        const double wi = sign * tw[2 * k + 1];
        double* __restrict ar_p = xr + (i + k) * lanes;
        double* __restrict ai_p = xi + (i + k) * lanes;
        double* __restrict br_p = xr + (i + half + k) * lanes;
        double* __restrict bi_p = xi + (i + half + k) * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
          const double br = br_p[l], bi = bi_p[l];
          const double vr = br * wr - bi * wi;
          const double vi = br * wi + bi * wr;
          const double ar = ar_p[l], ai = ai_p[l];
          ar_p[l] = ar + vr;
          ai_p[l] = ai + vi;
          br_p[l] = ar - vr;
          bi_p[l] = ai - vi;
        }
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_ * lanes; ++i) xr[i] *= inv;
    for (std::size_t i = 0; i < n_ * lanes; ++i) xi[i] *= inv;
  }
}

void FftPlan::forward(ComplexVector& x) const { run(x, /*inverse=*/false); }
void FftPlan::inverse(ComplexVector& x) const { run(x, /*inverse=*/true); }
void FftPlan::forward_batch(BatchComplex& x) const { run_batch(x, /*inverse=*/false); }
void FftPlan::inverse_batch(BatchComplex& x) const { run_batch(x, /*inverse=*/true); }

const FftPlan& FftPlan::shared(std::size_t n) {
  // Thread-local keeps the cache lock-free; a handful of sizes per thread at
  // ~24 bytes/sample is cheap next to one scalogram.
  thread_local std::map<std::size_t, std::unique_ptr<FftPlan>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<FftPlan>(n)).first;
  }
  return *it->second;
}

void fft(ComplexVector& x) { FftPlan::shared(x.size()).forward(x); }
void ifft(ComplexVector& x) { FftPlan::shared(x.size()).inverse(x); }

ComplexVector rfft(const std::vector<double>& x) {
  ComplexVector c(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex(x[i], 0.0);
  fft(c);
  return c;
}

std::vector<double> magnitude_spectrum(const std::vector<double>& x) {
  const ComplexVector c = rfft(x);
  std::vector<double> mag(c.size() / 2 + 1);
  for (std::size_t i = 0; i < mag.size(); ++i) mag[i] = std::abs(c[i]);
  return mag;
}

std::vector<double> convolve(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;

  // Direct convolution wins while the multiply count a.size()*b.size() stays
  // below ~4096 (two ~64-tap signals); beyond that the three transforms
  // amortize.
  if (a.size() * b.size() <= 4096) {
    std::vector<double> out(out_len, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
    }
    return out;
  }

  const std::size_t n = next_pow2(out_len);
  const FftPlan& plan = FftPlan::shared(n);
  ComplexVector fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0.0);
  plan.forward(fa);
  plan.forward(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  plan.inverse(fa);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace sidis::dsp

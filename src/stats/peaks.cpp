#include "stats/peaks.hpp"

#include <algorithm>

namespace sidis::stats {

std::vector<GridPoint> local_maxima_2d(const linalg::Matrix& map, double min_value) {
  std::vector<GridPoint> out;
  const std::size_t rows = map.rows();
  const std::size_t cols = map.cols();
  for (std::size_t j = 0; j < rows; ++j) {
    for (std::size_t k = 0; k < cols; ++k) {
      const double v = map(j, k);
      if (v < min_value) continue;
      bool ge_all = true;
      bool gt_any = false;
      for (int dj = -1; dj <= 1 && ge_all; ++dj) {
        for (int dk = -1; dk <= 1; ++dk) {
          if (dj == 0 && dk == 0) continue;
          const auto nj = static_cast<std::ptrdiff_t>(j) + dj;
          const auto nk = static_cast<std::ptrdiff_t>(k) + dk;
          if (nj < 0 || nk < 0 || nj >= static_cast<std::ptrdiff_t>(rows) ||
              nk >= static_cast<std::ptrdiff_t>(cols)) {
            continue;
          }
          const double nv = map(static_cast<std::size_t>(nj), static_cast<std::size_t>(nk));
          if (v < nv) {
            ge_all = false;
            break;
          }
          if (v > nv) gt_any = true;
        }
      }
      if (ge_all && gt_any) out.push_back({j, k, v});
    }
  }
  return out;
}

namespace {
bool value_desc(const GridPoint& a, const GridPoint& b) {
  if (a.value != b.value) return a.value > b.value;
  if (a.j != b.j) return a.j < b.j;
  return a.k < b.k;
}
}  // namespace

std::vector<GridPoint> top_k(std::vector<GridPoint> points, std::size_t count) {
  std::sort(points.begin(), points.end(), value_desc);
  if (points.size() > count) points.resize(count);
  return points;
}

std::vector<GridPoint> bottom_k(std::vector<GridPoint> points, std::size_t count) {
  std::sort(points.begin(), points.end(), value_desc);
  std::reverse(points.begin(), points.end());
  if (points.size() > count) points.resize(count);
  return points;
}

}  // namespace sidis::stats

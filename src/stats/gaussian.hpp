// Gaussian density estimation, univariate and multivariate.
//
// The entire template-attack side of the pipeline (KL feature maps, LDA/QDA,
// Bayesian baselines) is built on Gaussian class-conditional models, so this
// header is the statistical bedrock of the repository.
#pragma once

#include <span>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"

namespace sidis::stats {

/// Univariate Gaussian N(mean, var).
struct Gaussian1D {
  double mean = 0.0;
  double var = 1.0;

  /// Maximum-likelihood fit (unbiased variance).  Variance is clamped to
  /// `min_var` so degenerate point masses stay usable in KL formulas.
  static Gaussian1D fit(std::span<const double> samples, double min_var = 1e-12);

  double pdf(double x) const;
  double log_pdf(double x) const;
};

/// Multivariate Gaussian with a cached Cholesky factorization of the
/// (regularized) covariance.
class MultivariateGaussian {
 public:
  MultivariateGaussian() = default;

  /// Fits mean and covariance from sample rows; the covariance receives
  /// `ridge` on its diagonal, escalated automatically (x10 up to 1e3 steps)
  /// until the Cholesky succeeds.  Requires at least 2 rows.
  static MultivariateGaussian fit(const linalg::Matrix& samples, double ridge = 1e-9);

  /// Builds directly from moments (covariance regularized the same way).
  static MultivariateGaussian from_moments(linalg::Vector mean, linalg::Matrix cov,
                                           double ridge = 1e-9);

  std::size_t dim() const { return mean_.size(); }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Matrix& covariance() const { return cov_; }
  double log_det() const { return chol_.log_det(); }

  double log_pdf(const linalg::Vector& x) const;
  double mahalanobis_squared(const linalg::Vector& x) const;

  /// Batched log-density over a struct-of-arrays sample block: `x_cols` is
  /// (dim x lanes) with columns as samples; out[l] is bit-identical to
  /// log_pdf(column l).  The mean subtraction, triangular solve, and
  /// log-normalizer all sweep the whole batch lane-contiguous; `centered`
  /// and `solve` are grow-once caller scratch.
  void log_pdf_batch(const linalg::Matrix& x_cols, std::span<double> out,
                     linalg::Matrix& centered, linalg::Matrix& solve) const;

  const linalg::Cholesky& cholesky() const { return chol_; }

 private:
  linalg::Vector mean_;
  linalg::Matrix cov_;
  linalg::Cholesky chol_;
};

}  // namespace sidis::stats

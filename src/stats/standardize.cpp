#include "stats/standardize.hpp"

#include <cmath>
#include <stdexcept>

namespace sidis::stats {

ColumnScaler ColumnScaler::fit(const linalg::Matrix& samples, double eps) {
  if (samples.rows() < 1) throw std::invalid_argument("ColumnScaler::fit: empty");
  ColumnScaler s;
  s.mean_ = linalg::row_mean(samples);
  s.std_.assign(samples.cols(), 0.0);
  if (samples.rows() > 1) {
    for (std::size_t r = 0; r < samples.rows(); ++r) {
      auto row = samples.row(r);
      for (std::size_t c = 0; c < samples.cols(); ++c) {
        const double d = row[c] - s.mean_[c];
        s.std_[c] += d * d;
      }
    }
    for (double& v : s.std_) {
      v = std::sqrt(v / static_cast<double>(samples.rows() - 1));
    }
  }
  for (double& v : s.std_) v = std::max(v, eps);
  return s;
}

ColumnScaler ColumnScaler::from_parts(linalg::Vector mean, linalg::Vector stddev) {
  if (mean.size() != stddev.size()) {
    throw std::invalid_argument("ColumnScaler::from_parts: size mismatch");
  }
  ColumnScaler s;
  s.mean_ = std::move(mean);
  s.std_ = std::move(stddev);
  return s;
}

linalg::Vector ColumnScaler::transform(const linalg::Vector& x) const {
  if (x.size() != mean_.size()) throw std::invalid_argument("ColumnScaler: dim mismatch");
  linalg::Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / std_[i];
  return z;
}

linalg::Matrix ColumnScaler::transform(const linalg::Matrix& samples) const {
  linalg::Matrix out(samples.rows(), samples.cols());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    const linalg::Vector z = transform(samples.row_vector(r));
    for (std::size_t c = 0; c < samples.cols(); ++c) out(r, c) = z[c];
  }
  return out;
}

linalg::Vector ColumnScaler::inverse_transform(const linalg::Vector& z) const {
  if (z.size() != mean_.size()) throw std::invalid_argument("ColumnScaler: dim mismatch");
  linalg::Vector x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) x[i] = z[i] * std_[i] + mean_[i];
  return x;
}

linalg::Vector normalize_vector(const linalg::Vector& x, double eps) {
  if (x.empty()) return {};
  double m = 0.0;
  for (double v : x) m += v;
  m /= static_cast<double>(x.size());
  double var = 0.0;
  for (double v : x) var += (v - m) * (v - m);
  var /= static_cast<double>(x.size());
  const double s = std::max(std::sqrt(var), eps);
  linalg::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - m) / s;
  return out;
}

linalg::Matrix normalize_rows(const linalg::Matrix& samples, double eps) {
  linalg::Matrix out(samples.rows(), samples.cols());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    const linalg::Vector z = normalize_vector(samples.row_vector(r), eps);
    for (std::size_t c = 0; c < samples.cols(); ++c) out(r, c) = z[c];
  }
  return out;
}

}  // namespace sidis::stats

// Principal component analysis (Sec. 3.2): unsupervised linear
// dimensionality reduction of the KL-selected feature points.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace sidis::stats {

/// Fitted PCA model.  `transform` maps a p-dimensional feature vector onto
/// its first k principal components.
class Pca {
 public:
  Pca() = default;

  /// Fits on sample rows (n x p).  Keeps min(`max_components`, p) components.
  /// Requires n >= 2.
  static Pca fit(const linalg::Matrix& samples, std::size_t max_components = SIZE_MAX);

  /// Projects a single vector onto the leading `k` components
  /// (k <= num_components(); defaults to all kept components).
  linalg::Vector transform(const linalg::Vector& x, std::size_t k = SIZE_MAX) const;

  /// Projects every row of `samples`.
  linalg::Matrix transform(const linalg::Matrix& samples, std::size_t k = SIZE_MAX) const;

  /// Reconstructs an approximation of the original vector from a projection.
  linalg::Vector inverse_transform(const linalg::Vector& z) const;

  std::size_t num_components() const { return eigenvalues_.size(); }
  std::size_t input_dim() const { return mean_.size(); }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& eigenvalues() const { return eigenvalues_; }
  /// Columns are principal axes, descending eigenvalue order.
  const linalg::Matrix& components() const { return components_; }

  /// Fraction of total variance captured by the first k components.
  double explained_variance_ratio(std::size_t k) const;

  /// Smallest k whose cumulative explained variance reaches `fraction`.
  std::size_t components_for_variance(double fraction) const;

  /// Trace of the training covariance (denominator of the variance ratios).
  double total_variance() const { return total_variance_; }

  /// Rebuilds a fitted model from stored parts (template deserialization).
  static Pca from_parts(linalg::Vector mean, linalg::Vector eigenvalues,
                        linalg::Matrix components, double total_variance);

 private:
  linalg::Vector mean_;
  linalg::Vector eigenvalues_;   ///< descending, clamped at >= 0
  linalg::Matrix components_;    ///< p x k, axes as columns
  double total_variance_ = 0.0;  ///< trace of the covariance before truncation
};

}  // namespace sidis::stats

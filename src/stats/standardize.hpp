// Feature normalization, two flavours the paper distinguishes:
//
//  * per-column standardization fitted on training data ("Fifth, selected
//    feature values are normalized" in the Fig. 1 flow) -- `ColumnScaler`;
//  * per-trace normalization of a selected feature vector, the key
//    ingredient of covariate-shift adaptation (Table 3 "With Norm."), which
//    removes the additive offset / multiplicative gain that a different
//    program file or device imposes on the whole trace -- `normalize_vector`.
#pragma once

#include "linalg/matrix.hpp"

namespace sidis::stats {

/// Per-column z-score scaler: fitted on a training matrix, applied to any
/// vector/matrix with the same column count.
class ColumnScaler {
 public:
  ColumnScaler() = default;

  /// Learns column means and standard deviations (clamped to >= eps).
  static ColumnScaler fit(const linalg::Matrix& samples, double eps = 1e-12);

  linalg::Vector transform(const linalg::Vector& x) const;
  linalg::Matrix transform(const linalg::Matrix& samples) const;
  linalg::Vector inverse_transform(const linalg::Vector& z) const;

  std::size_t dim() const { return mean_.size(); }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& stddev() const { return std_; }

  /// Rebuilds a fitted scaler from stored statistics.
  static ColumnScaler from_parts(linalg::Vector mean, linalg::Vector stddev);

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

/// Per-trace z-score: subtracts the vector's own mean and divides by its own
/// standard deviation.  Unlike ColumnScaler this needs no training statistics,
/// which is exactly why it survives covariate shift: an additive DC offset or
/// gain common to all features of one trace cancels out.
linalg::Vector normalize_vector(const linalg::Vector& x, double eps = 1e-12);

/// Applies `normalize_vector` to every row.
linalg::Matrix normalize_rows(const linalg::Matrix& samples, double eps = 1e-12);

}  // namespace sidis::stats

// Kullback-Leibler divergence, Eq. (1) of the paper, specialized to the
// Gaussian case the paper actually computes (citing [20]): every CWT grid
// point is modelled per class as a univariate normal over the profiling
// traces, and the closed-form Gaussian KL is evaluated point-by-point.
#pragma once

#include "linalg/matrix.hpp"
#include "stats/gaussian.hpp"

namespace sidis::stats {

/// Closed-form KL( N(p) || N(q) ) for univariate Gaussians:
///   log(sq/sp) + (sp^2 + (mp-mq)^2) / (2 sq^2) - 1/2.
double kl_gaussian(const Gaussian1D& p, const Gaussian1D& q);

/// Symmetrized divergence KL(p||q) + KL(q||p); used where the paper needs a
/// direction-free distance between two classes.
double symmetric_kl_gaussian(const Gaussian1D& p, const Gaussian1D& q);

/// Closed-form KL between multivariate Gaussians:
///   1/2 [ tr(Sq^-1 Sp) + (mq-mp)^T Sq^-1 (mq-mp) - k + ln det Sq / det Sp ].
double kl_gaussian(const MultivariateGaussian& p, const MultivariateGaussian& q);

/// Point-wise KL map between two stacks of scalograms.
///
/// `a` and `b` hold one scalogram per trace, all with identical shape
/// (scales x time).  The result has that same shape; entry (j,k) is the
/// Gaussian KL divergence between the two classes' coefficient distributions
/// at grid point (j,k).  When `symmetric` is set, the symmetrized divergence
/// is used (the paper's D_KL is directional; the symmetric variant is exposed
/// for ablation).
linalg::Matrix kl_map(const std::vector<linalg::Matrix>& a,
                      const std::vector<linalg::Matrix>& b,
                      bool symmetric = false, double min_var = 1e-12);

/// Per-grid-point Gaussian moments of a stack of scalograms: returns a pair
/// of matrices (means, variances) with the common scalogram shape.
struct MomentMaps {
  linalg::Matrix mean;
  linalg::Matrix var;
};
MomentMaps moment_maps(const std::vector<linalg::Matrix>& stack,
                       double min_var = 1e-12);

/// KL map computed from precomputed moment maps (avoids re-scanning trace
/// stacks inside the O(pairs) loops of the feature selector).
linalg::Matrix kl_map_from_moments(const MomentMaps& a, const MomentMaps& b,
                                   bool symmetric = false);

}  // namespace sidis::stats

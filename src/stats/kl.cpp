#include "stats/kl.hpp"

#include <cmath>
#include <stdexcept>

namespace sidis::stats {

double kl_gaussian(const Gaussian1D& p, const Gaussian1D& q) {
  const double dm = p.mean - q.mean;
  return 0.5 * (std::log(q.var / p.var) + (p.var + dm * dm) / q.var - 1.0);
}

double symmetric_kl_gaussian(const Gaussian1D& p, const Gaussian1D& q) {
  return kl_gaussian(p, q) + kl_gaussian(q, p);
}

double kl_gaussian(const MultivariateGaussian& p, const MultivariateGaussian& q) {
  if (p.dim() != q.dim()) throw std::invalid_argument("kl_gaussian: dim mismatch");
  const std::size_t k = p.dim();
  // tr(Sq^{-1} Sp): solve column by column against q's Cholesky.
  double trace = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const linalg::Vector col = p.covariance().col_vector(c);
    const linalg::Vector x = q.cholesky().solve(col);
    trace += x[c];
  }
  const linalg::Vector dm = linalg::sub(q.mean(), p.mean());
  const double maha = q.cholesky().mahalanobis_squared(dm);
  return 0.5 * (trace + maha - static_cast<double>(k) + q.log_det() - p.log_det());
}

MomentMaps moment_maps(const std::vector<linalg::Matrix>& stack, double min_var) {
  if (stack.empty()) throw std::invalid_argument("moment_maps: empty stack");
  const std::size_t rows = stack.front().rows();
  const std::size_t cols = stack.front().cols();
  for (const auto& m : stack) {
    if (m.rows() != rows || m.cols() != cols) {
      throw std::invalid_argument("moment_maps: inconsistent scalogram shapes");
    }
  }
  MomentMaps out{linalg::Matrix(rows, cols, 0.0), linalg::Matrix(rows, cols, 0.0)};
  const double n = static_cast<double>(stack.size());
  for (const auto& m : stack) {
    for (std::size_t i = 0; i < rows * cols; ++i) {
      out.mean.data()[i] += m.data()[i];
    }
  }
  for (std::size_t i = 0; i < rows * cols; ++i) out.mean.data()[i] /= n;
  if (stack.size() > 1) {
    for (const auto& m : stack) {
      for (std::size_t i = 0; i < rows * cols; ++i) {
        const double d = m.data()[i] - out.mean.data()[i];
        out.var.data()[i] += d * d;
      }
    }
    for (std::size_t i = 0; i < rows * cols; ++i) {
      out.var.data()[i] /= (n - 1.0);
    }
  }
  for (std::size_t i = 0; i < rows * cols; ++i) {
    out.var.data()[i] = std::max(out.var.data()[i], min_var);
  }
  return out;
}

linalg::Matrix kl_map_from_moments(const MomentMaps& a, const MomentMaps& b,
                                   bool symmetric) {
  if (a.mean.rows() != b.mean.rows() || a.mean.cols() != b.mean.cols()) {
    throw std::invalid_argument("kl_map_from_moments: shape mismatch");
  }
  linalg::Matrix out(a.mean.rows(), a.mean.cols(), 0.0);
  const std::size_t total = a.mean.rows() * a.mean.cols();
  for (std::size_t i = 0; i < total; ++i) {
    const Gaussian1D p{a.mean.data()[i], a.var.data()[i]};
    const Gaussian1D q{b.mean.data()[i], b.var.data()[i]};
    out.data()[i] = symmetric ? symmetric_kl_gaussian(p, q) : kl_gaussian(p, q);
  }
  return out;
}

linalg::Matrix kl_map(const std::vector<linalg::Matrix>& a,
                      const std::vector<linalg::Matrix>& b, bool symmetric,
                      double min_var) {
  return kl_map_from_moments(moment_maps(a, min_var), moment_maps(b, min_var),
                             symmetric);
}

}  // namespace sidis::stats

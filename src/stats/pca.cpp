#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/eigen.hpp"

namespace sidis::stats {

Pca Pca::fit(const linalg::Matrix& samples, std::size_t max_components) {
  if (samples.rows() < 2) throw std::invalid_argument("Pca::fit: need >= 2 samples");
  Pca pca;
  pca.mean_ = linalg::row_mean(samples);
  const linalg::Matrix cov = linalg::row_covariance(samples);
  const linalg::EigenDecomposition eig = linalg::eigen_symmetric(cov);

  pca.total_variance_ = 0.0;
  for (double v : eig.values) pca.total_variance_ += std::max(v, 0.0);

  const std::size_t k = std::min<std::size_t>(max_components, eig.values.size());
  pca.eigenvalues_.assign(eig.values.begin(),
                          eig.values.begin() + static_cast<std::ptrdiff_t>(k));
  for (double& v : pca.eigenvalues_) v = std::max(v, 0.0);
  pca.components_ = linalg::Matrix(cov.rows(), k);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t r = 0; r < cov.rows(); ++r) {
      pca.components_(r, c) = eig.vectors(r, c);
    }
  }
  return pca;
}

linalg::Vector Pca::transform(const linalg::Vector& x, std::size_t k) const {
  if (x.size() != mean_.size()) throw std::invalid_argument("Pca::transform: dim mismatch");
  k = std::min(k, num_components());
  linalg::Vector z(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < x.size(); ++r) {
      acc += (x[r] - mean_[r]) * components_(r, c);
    }
    z[c] = acc;
  }
  return z;
}

linalg::Matrix Pca::transform(const linalg::Matrix& samples, std::size_t k) const {
  k = std::min(k, num_components());
  linalg::Matrix out(samples.rows(), k);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    const linalg::Vector z = transform(samples.row_vector(r), k);
    for (std::size_t c = 0; c < k; ++c) out(r, c) = z[c];
  }
  return out;
}

linalg::Vector Pca::inverse_transform(const linalg::Vector& z) const {
  if (z.size() > num_components()) {
    throw std::invalid_argument("Pca::inverse_transform: too many coordinates");
  }
  linalg::Vector x = mean_;
  for (std::size_t c = 0; c < z.size(); ++c) {
    for (std::size_t r = 0; r < x.size(); ++r) x[r] += z[c] * components_(r, c);
  }
  return x;
}

double Pca::explained_variance_ratio(std::size_t k) const {
  if (total_variance_ <= 0.0) return 0.0;
  k = std::min(k, num_components());
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += eigenvalues_[i];
  return acc / total_variance_;
}

std::size_t Pca::components_for_variance(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  for (std::size_t k = 1; k <= num_components(); ++k) {
    if (explained_variance_ratio(k) >= fraction) return k;
  }
  return num_components();
}

Pca Pca::from_parts(linalg::Vector mean, linalg::Vector eigenvalues,
                    linalg::Matrix components, double total_variance) {
  if (components.cols() != eigenvalues.size() || components.rows() != mean.size()) {
    throw std::invalid_argument("Pca::from_parts: inconsistent shapes");
  }
  Pca pca;
  pca.mean_ = std::move(mean);
  pca.eigenvalues_ = std::move(eigenvalues);
  pca.components_ = std::move(components);
  pca.total_variance_ = total_variance;
  return pca;
}

}  // namespace sidis::stats

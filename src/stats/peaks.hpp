// 2-D peak finding on KL maps.
//
// Definition 3.1(3) of the paper selects grid points where the between-class
// KL divergence has a local maximum; this header implements that detection on
// the (scale x time) matrices produced by stats::kl_map.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace sidis::stats {

/// A grid point (j = scale/frequency index, k = time index) with its value.
struct GridPoint {
  std::size_t j = 0;
  std::size_t k = 0;
  double value = 0.0;

  friend bool operator==(const GridPoint&, const GridPoint&) = default;
};

/// Finds local maxima of `map` over an 8-connected neighbourhood.
/// A point qualifies when it is >= all neighbours, strictly greater than at
/// least one, and its value is >= `min_value`.  Border points compare only
/// against their in-grid neighbours.
std::vector<GridPoint> local_maxima_2d(const linalg::Matrix& map,
                                       double min_value = 0.0);

/// The `count` highest-valued points from `points` (descending by value;
/// ties broken by (j,k) for determinism).  Returns fewer when the input is
/// smaller.
std::vector<GridPoint> top_k(std::vector<GridPoint> points, std::size_t count);

/// The `count` lowest-valued points (the paper's Fig. 3 "3 lowest peak
/// points" ablation).
std::vector<GridPoint> bottom_k(std::vector<GridPoint> points, std::size_t count);

}  // namespace sidis::stats

#include "stats/gaussian.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sidis::stats {

Gaussian1D Gaussian1D::fit(std::span<const double> samples, double min_var) {
  if (samples.empty()) throw std::invalid_argument("Gaussian1D::fit: no samples");
  double m = 0.0;
  for (double v : samples) m += v;
  m /= static_cast<double>(samples.size());
  double var = 0.0;
  if (samples.size() > 1) {
    for (double v : samples) var += (v - m) * (v - m);
    var /= static_cast<double>(samples.size() - 1);
  }
  return {m, std::max(var, min_var)};
}

double Gaussian1D::pdf(double x) const { return std::exp(log_pdf(x)); }

double Gaussian1D::log_pdf(double x) const {
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * std::numbers::pi * var) + d * d / var);
}

MultivariateGaussian MultivariateGaussian::fit(const linalg::Matrix& samples,
                                               double ridge) {
  if (samples.rows() < 2) {
    throw std::invalid_argument("MultivariateGaussian::fit: need >= 2 samples");
  }
  return from_moments(linalg::row_mean(samples), linalg::row_covariance(samples), ridge);
}

MultivariateGaussian MultivariateGaussian::from_moments(linalg::Vector mean,
                                                        linalg::Matrix cov,
                                                        double ridge) {
  if (cov.rows() != cov.cols() || cov.rows() != mean.size()) {
    throw std::invalid_argument("MultivariateGaussian: shape mismatch");
  }
  MultivariateGaussian g;
  g.mean_ = std::move(mean);
  // Escalate the ridge until the covariance factors; rank deficiency is a
  // routine occurrence when #traces ~ #features.
  double lambda = ridge;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    g.cov_ = linalg::regularized(cov, lambda);
    g.chol_ = linalg::Cholesky::compute(g.cov_);
    if (g.chol_.valid) return g;
    lambda = lambda == 0.0 ? 1e-12 : lambda * 10.0;
  }
  throw std::runtime_error("MultivariateGaussian: covariance could not be regularized");
}

double MultivariateGaussian::log_pdf(const linalg::Vector& x) const {
  const double d2 = mahalanobis_squared(x);
  const double k = static_cast<double>(dim());
  return -0.5 * (k * std::log(2.0 * std::numbers::pi) + log_det() + d2);
}

double MultivariateGaussian::mahalanobis_squared(const linalg::Vector& x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument("MultivariateGaussian: dimension mismatch");
  }
  return chol_.mahalanobis_squared(linalg::sub(x, mean_));
}

void MultivariateGaussian::log_pdf_batch(const linalg::Matrix& x_cols,
                                         std::span<double> out,
                                         linalg::Matrix& centered,
                                         linalg::Matrix& solve) const {
  const std::size_t n = mean_.size();
  const std::size_t lanes = x_cols.cols();
  if (x_cols.rows() != n) {
    throw std::invalid_argument("MultivariateGaussian: dimension mismatch");
  }
  if (centered.rows() != n || centered.cols() != lanes) {
    centered = linalg::Matrix(n, lanes);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double m = mean_[i];
    const double* __restrict xrow = x_cols.row(i).data();
    double* __restrict crow = centered.row(i).data();
    for (std::size_t l = 0; l < lanes; ++l) crow[l] = xrow[l] - m;
  }
  chol_.mahalanobis_squared_batch(centered, out, solve);
  // Same normalizer expression as the scalar log_pdf; computing the constant
  // once per batch is safe because it was already a single subexpression
  // there (k*log(2pi) + log_det groups left-to-right before d2 joins).
  const double k = static_cast<double>(dim());
  const double norm = k * std::log(2.0 * std::numbers::pi) + log_det();
  for (std::size_t l = 0; l < lanes; ++l) out[l] = -0.5 * (norm + out[l]);
}

}  // namespace sidis::stats

// KL-divergence feature selection in the time-frequency domain (Sec. 3.1 and
// Definition 3.1 of the paper).
//
// Every class's CWT coefficients are modelled per grid point as univariate
// Gaussians.  Three ingredients combine into the feature set:
//   * the between-class KL map, whose local maxima are "distinct points";
//   * the within-class KL maps across profiling program files, which flag
//     points that vary with measurement context ("not-varying" requires the
//     max over program pairs to stay below KL_th);
//   * the intersection, ranked by between-class KL, of which the top-N
//     ("DNVP^(5)" in the paper) become the pair's feature points.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/wavelet.hpp"
#include "sim/trace.hpp"
#include "stats/kl.hpp"
#include "stats/peaks.hpp"

namespace sidis::features {

/// Streaming per-grid-point Gaussian moments of one class's scalograms:
/// pooled over all traces and split per profiling program.
struct ClassMoments {
  stats::MomentMaps pooled;
  std::vector<int> program_ids;               ///< order of appearance
  std::vector<stats::MomentMaps> per_program; ///< aligned with program_ids
  std::vector<std::size_t> per_program_counts;///< traces per program
  std::size_t trace_count = 0;
};

/// One pass of CWTs over a trace set, accumulating moments only (memory stays
/// O(programs x grid + workers x window) regardless of trace count).
/// `workers` fans the scalogram computation across a thread pool (0 = all
/// hardware threads); the moment reduction always runs in trace order, so the
/// result is bit-identical for every worker count.
ClassMoments compute_class_moments(const dsp::Cwt& cwt, const sim::TraceSet& traces,
                                   double min_var = 1e-12, std::size_t workers = 1);

/// Within-class KL map, D_KL^W of Definition 3.1(2).  Requires >= 2 programs.
///
/// Definition 3.1 is stated for the true divergences ("every program pair
/// below KL_th", i.e. the max over pairs).  The empirical Gaussian-KL
/// estimator, however, has a positive finite-sample bias of about
/// 3/(2*n_q) + 1/(2*n_p) even when the true divergence is zero -- at paper
/// scale (hundreds of traces per program) that floor sits below KL_th, but a
/// faithful implementation must remove it or the thresholds lose meaning at
/// any other scale.  This routine therefore (a) subtracts the analytic bias
/// per program pair and (b) averages the debiased values over all ordered
/// pairs (clamping the final mean at 0), which suppresses the remaining
/// estimator noise by ~1/#pairs.  Set `use_max` for the literal
/// max-over-pairs statistic (debiased, clamped per pair).
linalg::Matrix within_class_kl_map(const ClassMoments& moments, bool symmetric = false,
                                   bool use_max = false);

/// Between-class KL map D_KL^B from pooled moments.
linalg::Matrix between_class_kl_map(const ClassMoments& a, const ClassMoments& b,
                                    bool symmetric = false);

/// Boolean mask (row-major, grid-shaped) of points whose within-class KL
/// stays below `kl_th` -- the NVP_c set.
std::vector<std::uint8_t> nvp_mask(const linalg::Matrix& within_map, double kl_th);

/// Residual standard error of the debiased, pair-averaged within-class KL
/// estimate for this corpus: roughly mean-pair-bias / sqrt(P - 1) where P is
/// the number of profiling programs.  Threshold comparisons only make sense
/// relative to this floor (see PipelineConfig::adaptive_threshold).
double within_class_noise_floor(const ClassMoments& moments);

/// Distinct & not-varying feature points of a class pair: local maxima of
/// the between-class map, restricted to NVP_a and NVP_b, top `count` by KL
/// value (DNVP^(count)).
std::vector<stats::GridPoint> dnvp(const linalg::Matrix& between_map,
                                   const std::vector<std::uint8_t>& mask_a,
                                   const std::vector<std::uint8_t>& mask_b,
                                   std::size_t count);

/// Union of per-pair point sets, deduplicated, in deterministic
/// (value-descending, then index) order.
std::vector<stats::GridPoint> unify_points(
    const std::vector<std::vector<stats::GridPoint>>& per_pair);

/// Extracts the CWT values of a trace at the given grid points (batched via
/// Cwt::coefficients, which upgrades point-dense scales to spectral rows).
/// The workspace overload reuses the caller's scratch buffers -- hand each
/// worker thread its own.
linalg::Vector extract_features(const dsp::Cwt& cwt, const std::vector<double>& samples,
                                const std::vector<stats::GridPoint>& points);
linalg::Vector extract_features(const dsp::Cwt& cwt, const std::vector<double>& samples,
                                const std::vector<stats::GridPoint>& points,
                                dsp::CwtWorkspace& ws);

}  // namespace sidis::features

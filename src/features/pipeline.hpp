// The fitted feature pipeline of Fig. 1: CWT -> KL feature selection ->
// normalization -> PCA.  Fitting consumes labeled trace sets (one per
// class); transforming maps any raw 315-sample trace into the reduced
// feature space where the classifiers live.
#pragma once

#include <cstddef>
#include <vector>

#include "features/selection.hpp"
#include "ml/dataset.hpp"
#include "stats/pca.hpp"
#include "stats/standardize.hpp"

namespace sidis::features {

struct PipelineConfig {
  dsp::CwtConfig cwt;
  /// Definition 3.1 threshold; the paper uses 0.005 initially and tightens
  /// to 0.0005 for covariate-shift adaptation (Sec. 5.5).
  double kl_threshold = 0.005;
  /// DNVP^(N): top-N distinct & not-varying points per class pair.
  std::size_t points_per_pair = 5;
  /// Compare the within-class KL against kl_threshold *plus* the corpus's
  /// estimator noise floor (features::within_class_noise_floor).  The
  /// paper's absolute thresholds implicitly assume its 300-traces-per-program
  /// corpora; the adaptive form keeps the loose/tight contrast meaningful at
  /// any profiling scale.
  bool adaptive_threshold = true;
  /// Per-trace normalization -- the paper's "With Norm." CSA ingredient
  /// (Table 3).  The window is mean-centred and divided by the capture's
  /// gain estimate (TraceMeta::gain_estimate, measured on the content-free
  /// trigger prefix), cancelling the session/device/program gain without
  /// injecting content-dependent estimator noise.  Applied identically
  /// during profiling and classification.
  bool per_trace_normalization = true;
  /// Column standardization before PCA (the Fig.-1 "normalization" step).
  bool column_standardization = true;
  /// Cap on the unified feature-point set.  With K classes the per-pair
  /// DNVP union grows like 5*K*(K-1)/2; at the 112-class level that would
  /// push PCA into thousands of dimensions.  Points are KL-ranked, so
  /// truncation keeps the strongest of Definition 3.1's candidates; the cap
  /// also bounds classification cost (one kernel correlation per point).
  std::size_t max_unified_points = 512;
  /// Principal components kept (experiments sweep the effective count at
  /// classification time via Dataset::truncated).
  std::size_t pca_components = 64;
  /// When a pair yields no eligible peak under the NVP masks (everything
  /// varies), fall back to the top between-class peaks without the masks so
  /// the pipeline stays usable; the CSA benches turn this off to show the
  /// failure mode honestly.
  bool allow_fallback_points = true;
  /// Threads for the trace-parallel stages (moment pass, pass-2 feature
  /// extraction, batched transform): 0 = all hardware threads, 1 =
  /// sequential.  Every stage reduces in trace order, so the fitted model
  /// and transformed datasets are bit-identical for any setting.
  std::size_t workers = 0;
};

/// Re-keys a pipeline recipe for a decimated acquisition grid
/// (sim::AcquisitionConfig::samples_per_cycle): the CWT scale band is
/// expressed in samples, so holding it fixed across rates would move it in
/// *frequency*; this rescales min/max_scale by rate / nominal-rate (clamping
/// the finest scale at one sample) so the selected feature points track the
/// same absolute frequency band at every configuration.  Identity at the
/// nominal 156.25 samples/cycle.  Each configuration gets its own fitted
/// pipeline -- grids of different lengths are never mixed in one fit.
PipelineConfig configured_for(PipelineConfig base, double samples_per_cycle);

/// Labeled input: one TraceSet per class, parallel to `labels`.
struct LabeledTraces {
  std::vector<int> labels;
  std::vector<const sim::TraceSet*> sets;
};

/// A fitted pipeline is immutable: all transform overloads are const,
/// allocate their scratch locally, and may run concurrently from any number
/// of threads on one shared instance (see the thread-safety contract in
/// core/hierarchical.hpp).
class FeaturePipeline {
 public:
  FeaturePipeline() = default;

  /// Per-class intermediate products (CWT moment maps + NVP mask), reusable
  /// across many fits -- the majority-voting method (Sec. 5.4) fits one
  /// pipeline per class *pair*, so sharing this pass turns an O(K^2) cost
  /// into O(K).
  struct ClassData {
    int label = 0;
    const sim::TraceSet* traces = nullptr;
    sim::TraceSet preprocessed;  ///< per-trace-normalized copy (or verbatim)
    ClassMoments moments;
    std::vector<std::uint8_t> mask;
  };

  /// Runs the moment/mask pass once per class.
  static std::vector<ClassData> precompute(const LabeledTraces& input,
                                           const PipelineConfig& config);

  /// Fits selection + scalers + PCA on profiling traces.
  /// Throws std::invalid_argument on empty input or mismatched shapes.
  static FeaturePipeline fit(const LabeledTraces& input, PipelineConfig config = {});

  /// Fits from precomputed class data (subset selection by pointer).
  static FeaturePipeline fit(const std::vector<const ClassData*>& classes,
                             PipelineConfig config = {});

  /// Rebuilds a fitted pipeline from stored parts (template persistence).
  static FeaturePipeline from_parts(PipelineConfig config,
                                    std::vector<stats::GridPoint> points,
                                    stats::ColumnScaler scaler, stats::Pca pca,
                                    std::size_t grid_size);

  /// Projects one trace into the fitted feature space, keeping
  /// `components` PCs (default: all fitted ones).  Uses the trace's
  /// gain_estimate for per-trace normalization when enabled.
  linalg::Vector transform(const sim::Trace& trace,
                           std::size_t components = SIZE_MAX) const;

  /// Scratch-reusing variant for batch callers: identical output to
  /// transform(trace), but the spectral scratch comes from the caller, so one
  /// grow-once workspace serves a whole batch instead of a fresh allocation
  /// per window.  `prepared` must be the output of preprocess_window for this
  /// pipeline's per_trace_normalization setting -- splitting the
  /// preprocessing out lets a multi-level caller (the hierarchical
  /// disassembler classifies each window through up to four pipelines that
  /// share one normalization flag) pay the per-trace normalization once.
  linalg::Vector transform_prepared(const std::vector<double>& prepared,
                                    std::size_t components,
                                    dsp::CwtWorkspace& ws) const;

  /// The per-trace preprocessing transform_prepared expects: mean removal +
  /// gain division when `per_trace_normalization`, the raw samples verbatim
  /// otherwise.
  static std::vector<double> preprocess_window(const sim::Trace& trace,
                                               bool per_trace_normalization);

  /// Batched, struct-of-arrays variant of transform_prepared: the K windows
  /// (same length, already preprocessed for this pipeline's
  /// per_trace_normalization setting) move through sparse feature-point
  /// extraction, column standardization, and the PCA projection in one fused
  /// pass per stage, with the window dimension innermost so every loop
  /// vectorizes across the batch.  Returns (components x K) with *columns*
  /// as windows; column w is bit-identical to
  /// transform_prepared(*prepared[w], components, ws) -- per-window
  /// reductions keep the scalar accumulation order, only the batch dimension
  /// is vectorized.
  linalg::Matrix transform_prepared_batch(
      std::span<const std::vector<double>* const> prepared,
      std::size_t components, dsp::CwtBatchWorkspace& ws) const;

  /// transform_prepared_batch on a pre-marshalled SoA block (layout of
  /// dsp::Cwt::marshal: soa[t * lanes + l] = window l, sample t; `soa` must
  /// hold n * lanes doubles).  Lets a caller running several pipelines over
  /// the same batch -- the hierarchical classifier runs up to four -- pay the
  /// marshal once instead of once per pipeline.  Identical output guarantees.
  linalg::Matrix transform_soa_batch(std::span<const double> soa, std::size_t n,
                                     std::size_t lanes, std::size_t components,
                                     dsp::CwtBatchWorkspace& ws) const;

  /// Raw-window variant: assumes unit capture gain (gain_estimate = 1).
  linalg::Vector transform(const std::vector<double>& samples,
                           std::size_t components = SIZE_MAX) const;

  /// Projects a whole trace set into a labeled dataset.
  ml::Dataset transform(const LabeledTraces& input,
                        std::size_t components = SIZE_MAX) const;
  ml::Dataset transform(const sim::TraceSet& traces, int label,
                        std::size_t components = SIZE_MAX) const;

  /// CSA re-normalization from a small recalibration corpus captured on a
  /// *different* device or session (Sec. 5.6 recalibration budgets): returns
  /// a copy of this pipeline whose column scaler is re-centred on the
  /// recalibration traces' selected-feature means, so the shifted corpus
  /// lands where the training corpus did and the fitted PCA + classifier
  /// stay valid.  `rescale` also replaces the per-column standard deviations
  /// (needs a generous budget; noisy below ~10 traces/class).  Labels are
  /// not used -- a roughly class-balanced corpus suffices.  Requires a
  /// pipeline fitted with column_standardization; throws std::logic_error
  /// otherwise and std::invalid_argument on an empty corpus.
  FeaturePipeline renormalized(const sim::TraceSet& recal, bool rescale = false) const;

  // -- introspection for the experiment benches -----------------------------
  const std::vector<stats::GridPoint>& unified_points() const { return points_; }
  const stats::Pca& pca() const { return pca_; }
  const stats::ColumnScaler& scaler() const { return scaler_; }
  std::size_t max_components() const { return pca_.num_components(); }
  const PipelineConfig& config() const { return config_; }
  /// Grid size before selection (scales x samples), for the paper's
  /// "15750 -> 205, 98.7% reduction" statistic.
  std::size_t grid_size() const { return grid_size_; }

 private:
  linalg::Vector transform_one(const sim::Trace& trace, std::size_t components,
                               dsp::CwtWorkspace& ws) const;

  /// Splits points_ into the (js, ks) index arrays the Cwt batch entry
  /// points take, so the batch hot path reads them instead of rebuilding
  /// two vectors per call.  Both factory functions call this after setting
  /// points_.
  void index_points();

  PipelineConfig config_;
  dsp::Cwt cwt_{dsp::CwtConfig{}};
  std::vector<stats::GridPoint> points_;
  std::vector<std::size_t> point_js_, point_ks_;  ///< points_, split (cache)
  stats::ColumnScaler scaler_;
  stats::Pca pca_;
  std::size_t grid_size_ = 0;
};

}  // namespace sidis::features

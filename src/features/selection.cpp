#include "features/selection.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "runtime/thread_pool.hpp"

namespace sidis::features {

namespace {

/// Streaming mean/variance accumulator over grid-shaped matrices.
struct MomentAccumulator {
  linalg::Matrix sum;
  linalg::Matrix sum_sq;
  std::size_t n = 0;

  void init(std::size_t rows, std::size_t cols) {
    sum = linalg::Matrix(rows, cols, 0.0);
    sum_sq = linalg::Matrix(rows, cols, 0.0);
    n = 0;
  }
  void add(const linalg::Matrix& m) {
    for (std::size_t i = 0; i < m.data().size(); ++i) {
      sum.data()[i] += m.data()[i];
      sum_sq.data()[i] += m.data()[i] * m.data()[i];
    }
    ++n;
  }
  stats::MomentMaps finish(double min_var) const {
    if (n == 0) throw std::logic_error("MomentAccumulator: no samples");
    stats::MomentMaps out{sum, sum};
    const double nn = static_cast<double>(n);
    for (std::size_t i = 0; i < sum.data().size(); ++i) {
      const double mean = sum.data()[i] / nn;
      out.mean.data()[i] = mean;
      double var = 0.0;
      if (n > 1) {
        var = (sum_sq.data()[i] - nn * mean * mean) / (nn - 1.0);
      }
      out.var.data()[i] = std::max(var, min_var);
    }
    return out;
  }
};

}  // namespace

ClassMoments compute_class_moments(const dsp::Cwt& cwt, const sim::TraceSet& traces,
                                   double min_var, std::size_t workers) {
  if (traces.empty()) throw std::invalid_argument("compute_class_moments: no traces");
  const std::size_t rows = cwt.num_scales();
  const std::size_t cols = traces.front().samples.size();
  for (const sim::Trace& t : traces) {
    if (t.samples.size() != cols) {
      throw std::invalid_argument("compute_class_moments: inconsistent trace length");
    }
  }

  MomentAccumulator pooled;
  pooled.init(rows, cols);
  std::map<int, std::size_t> program_slot;
  std::vector<MomentAccumulator> per_program;
  std::vector<int> ids;

  // Scalograms are computed in fixed-size windows fanned across the pool
  // (each lane strides the window with its own workspace), then accumulated
  // sequentially in trace order.  The summation order therefore never depends
  // on the worker count, so the moments are bit-identical at 1 and N workers;
  // the window also caps peak memory at kWindow scalograms.
  constexpr std::size_t kWindow = 64;
  const std::size_t lanes =
      runtime::resolve_workers(workers, std::min(kWindow, traces.size()));
  std::vector<dsp::CwtWorkspace> ws(lanes);
  std::vector<dsp::Scalogram> window(std::min(kWindow, traces.size()));

  for (std::size_t base = 0; base < traces.size(); base += kWindow) {
    const std::size_t count = std::min(kWindow, traces.size() - base);
    runtime::parallel_for(lanes, lanes, [&](std::size_t lane) {
      for (std::size_t i = lane; i < count; i += lanes) {
        window[i] = cwt.transform(traces[base + i].samples, ws[lane]);
      }
    });
    for (std::size_t i = 0; i < count; ++i) {
      const sim::Trace& t = traces[base + i];
      pooled.add(window[i]);
      const auto [it, inserted] = program_slot.try_emplace(t.meta.program_id,
                                                           per_program.size());
      if (inserted) {
        per_program.emplace_back();
        per_program.back().init(rows, cols);
        ids.push_back(t.meta.program_id);
      }
      per_program[it->second].add(window[i]);
    }
  }

  ClassMoments out;
  out.pooled = pooled.finish(min_var);
  out.program_ids = ids;
  out.trace_count = pooled.n;
  out.per_program.reserve(per_program.size());
  for (const auto& acc : per_program) {
    out.per_program.push_back(acc.finish(min_var));
    out.per_program_counts.push_back(acc.n);
  }
  return out;
}

linalg::Matrix within_class_kl_map(const ClassMoments& moments, bool symmetric,
                                   bool use_max) {
  if (moments.per_program.size() < 2) {
    throw std::invalid_argument("within_class_kl_map: need >= 2 programs");
  }
  const std::size_t rows = moments.pooled.mean.rows();
  const std::size_t cols = moments.pooled.mean.cols();
  linalg::Matrix out(rows, cols, 0.0);
  std::size_t num_pairs = 0;

  // First-order bias of the empirical Gaussian KL when the true divergence
  // vanishes: E[KL(p_hat||q_hat)] ~ 3/(2 n_q) + 1/(2 n_p).
  const auto bias = [&](std::size_t a, std::size_t b) {
    const double np = static_cast<double>(moments.per_program_counts[a]);
    const double nq = static_cast<double>(moments.per_program_counts[b]);
    const double one_way = 1.5 / nq + 0.5 / np;
    // Symmetric mode sums both directions, so it carries both biases.
    return symmetric ? one_way + 1.5 / np + 0.5 / nq : one_way;
  };

  const auto accumulate = [&](std::size_t a, std::size_t b) {
    const linalg::Matrix map = stats::kl_map_from_moments(
        moments.per_program[a], moments.per_program[b], symmetric);
    const double debias = bias(a, b);
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      const double v = map.data()[i] - debias;
      if (use_max) {
        out.data()[i] = std::max(out.data()[i], std::max(v, 0.0));
      } else {
        out.data()[i] += v;
      }
    }
    ++num_pairs;
  };

  for (std::size_t a = 0; a < moments.per_program.size(); ++a) {
    for (std::size_t b = a + 1; b < moments.per_program.size(); ++b) {
      accumulate(a, b);
      if (!symmetric) accumulate(b, a);  // directional KL: check both ways
    }
  }
  if (!use_max) {
    const double inv = 1.0 / static_cast<double>(num_pairs);
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      out.data()[i] = std::max(out.data()[i] * inv, 0.0);
    }
  }
  return out;
}

linalg::Matrix between_class_kl_map(const ClassMoments& a, const ClassMoments& b,
                                    bool symmetric) {
  return stats::kl_map_from_moments(a.pooled, b.pooled, symmetric);
}

double within_class_noise_floor(const ClassMoments& moments) {
  const std::size_t programs = moments.per_program_counts.size();
  if (programs < 2) return 0.0;
  double mean_bias = 0.0;
  for (std::size_t p = 0; p < programs; ++p) {
    mean_bias += 2.0 / static_cast<double>(moments.per_program_counts[p]);
  }
  mean_bias /= static_cast<double>(programs);
  return mean_bias / std::sqrt(static_cast<double>(programs - 1));
}

std::vector<std::uint8_t> nvp_mask(const linalg::Matrix& within_map, double kl_th) {
  std::vector<std::uint8_t> mask(within_map.data().size());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = within_map.data()[i] < kl_th ? 1 : 0;
  }
  return mask;
}

std::vector<stats::GridPoint> dnvp(const linalg::Matrix& between_map,
                                   const std::vector<std::uint8_t>& mask_a,
                                   const std::vector<std::uint8_t>& mask_b,
                                   std::size_t count) {
  if (mask_a.size() != between_map.data().size() ||
      mask_b.size() != between_map.data().size()) {
    throw std::invalid_argument("dnvp: mask/grid size mismatch");
  }
  std::vector<stats::GridPoint> peaks = stats::local_maxima_2d(between_map);
  std::vector<stats::GridPoint> eligible;
  eligible.reserve(peaks.size());
  const std::size_t cols = between_map.cols();
  for (const stats::GridPoint& p : peaks) {
    const std::size_t idx = p.j * cols + p.k;
    if (mask_a[idx] && mask_b[idx]) eligible.push_back(p);
  }
  return stats::top_k(std::move(eligible), count);
}

std::vector<stats::GridPoint> unify_points(
    const std::vector<std::vector<stats::GridPoint>>& per_pair) {
  std::vector<stats::GridPoint> all;
  for (const auto& pts : per_pair) all.insert(all.end(), pts.begin(), pts.end());
  std::sort(all.begin(), all.end(), [](const stats::GridPoint& a, const stats::GridPoint& b) {
    if (a.value != b.value) return a.value > b.value;
    if (a.j != b.j) return a.j < b.j;
    return a.k < b.k;
  });
  // Hash-set dedup on the (j, k) coordinate keeps this linear; iterating the
  // sorted list preserves the KL-ranked (value-descending) order.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(all.size());
  std::vector<stats::GridPoint> out;
  out.reserve(all.size());
  for (const stats::GridPoint& p : all) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.j) << 32) |
        (static_cast<std::uint64_t>(p.k) & 0xffffffffULL);
    if (seen.insert(key).second) out.push_back(p);
  }
  return out;
}

linalg::Vector extract_features(const dsp::Cwt& cwt, const std::vector<double>& samples,
                                const std::vector<stats::GridPoint>& points) {
  dsp::CwtWorkspace ws;
  return extract_features(cwt, samples, points, ws);
}

linalg::Vector extract_features(const dsp::Cwt& cwt, const std::vector<double>& samples,
                                const std::vector<stats::GridPoint>& points,
                                dsp::CwtWorkspace& ws) {
  // Sparse extraction: O(points x kernel) instead of the full grid, which is
  // what makes real-time classification plausible (Sec. 5.4's variable-count
  // discussion).  Cwt::coefficients groups the points by scale and upgrades
  // point-dense scales to one spectral row each.
  std::vector<std::size_t> js(points.size()), ks(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    js[i] = points[i].j;
    ks[i] = points[i].k;
  }
  return cwt.coefficients(samples, js, ks, ws);
}

}  // namespace sidis::features

#include "features/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/signal.hpp"
#include "linalg/lanes.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/acq_config.hpp"

namespace sidis::features {

PipelineConfig configured_for(PipelineConfig base, double samples_per_cycle) {
  const double ratio = samples_per_cycle / sim::kNominalSamplesPerCycle;
  if (ratio == 1.0) return base;
  if (!(ratio > 0.0)) {
    throw std::invalid_argument("configured_for: samples_per_cycle must be > 0");
  }
  base.cwt.min_scale = std::max(1.0, base.cwt.min_scale * ratio);
  base.cwt.max_scale = std::max(base.cwt.min_scale + 1.0, base.cwt.max_scale * ratio);
  return base;
}

namespace {

/// Per-trace normalization: remove the residual window mean and divide by
/// the capture's gain estimate (from the content-free trigger prefix).
std::vector<double> normalize_window(const std::vector<double>& samples,
                                     double gain_estimate) {
  const double m = dsp::mean(samples);
  const double inv = 1.0 / std::max(gain_estimate, 1e-9);
  std::vector<double> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) out[i] = (samples[i] - m) * inv;
  return out;
}

/// Applies the per-trace normalization to a whole set when enabled.
sim::TraceSet preprocess(const sim::TraceSet& traces, bool normalize) {
  if (!normalize) return traces;
  sim::TraceSet out = traces;
  for (sim::Trace& t : out) {
    t.samples = normalize_window(t.samples, t.meta.gain_estimate);
  }
  return out;
}

/// Fills out[i] = body(i, workspace-of-lane) for i in [0, n), fanned across
/// `workers` lanes (0 = auto).  Each lane strides the index range with its
/// own CwtWorkspace, and every slot is written exactly once, so the result
/// is identical for any worker count.
template <typename Body>
void trace_parallel(std::size_t n, std::size_t workers, Body&& body) {
  const std::size_t lanes = runtime::resolve_workers(workers, n);
  std::vector<dsp::CwtWorkspace> ws(lanes);
  runtime::parallel_for(lanes, lanes, [&](std::size_t lane) {
    for (std::size_t i = lane; i < n; i += lanes) body(i, ws[lane]);
  });
}

}  // namespace

std::vector<FeaturePipeline::ClassData> FeaturePipeline::precompute(
    const LabeledTraces& input, const PipelineConfig& config) {
  if (input.labels.size() != input.sets.size() || input.labels.empty()) {
    throw std::invalid_argument("FeaturePipeline::precompute: bad labeled input");
  }
  const dsp::Cwt cwt(config.cwt);
  std::vector<ClassData> out;
  out.reserve(input.sets.size());
  for (std::size_t c = 0; c < input.sets.size(); ++c) {
    const sim::TraceSet* s = input.sets[c];
    if (s == nullptr || s->empty()) {
      throw std::invalid_argument("FeaturePipeline::precompute: empty trace set");
    }
    ClassData d;
    d.label = input.labels[c];
    d.traces = s;
    d.preprocessed = preprocess(*s, config.per_trace_normalization);
    d.moments = compute_class_moments(cwt, d.preprocessed, 1e-12, config.workers);
    if (d.moments.per_program.size() >= 2) {
      double threshold = config.kl_threshold;
      if (config.adaptive_threshold) {
        threshold += within_class_noise_floor(d.moments);
      }
      d.mask = nvp_mask(within_class_kl_map(d.moments), threshold);
    } else {
      // Single-program profiling cannot estimate within-class variation;
      // treat every point as not-varying (the paper's initial experiment).
      d.mask.assign(d.moments.pooled.mean.data().size(), 1);
    }
    out.push_back(std::move(d));
  }
  return out;
}

FeaturePipeline FeaturePipeline::fit(const LabeledTraces& input, PipelineConfig config) {
  const std::vector<ClassData> data = precompute(input, config);
  std::vector<const ClassData*> ptrs;
  ptrs.reserve(data.size());
  for (const ClassData& d : data) ptrs.push_back(&d);
  return fit(ptrs, config);
}

FeaturePipeline FeaturePipeline::fit(const std::vector<const ClassData*>& classes,
                                     PipelineConfig config) {
  if (classes.size() < 2) {
    throw std::invalid_argument("FeaturePipeline::fit: need >= 2 classes");
  }
  FeaturePipeline p;
  p.config_ = config;
  p.cwt_ = dsp::Cwt(config.cwt);
  p.grid_size_ = classes.front()->moments.pooled.mean.data().size();

  // Per-pair DNVP extraction, then unification (Sec. 3.1).
  std::vector<std::vector<stats::GridPoint>> per_pair;
  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t b = a + 1; b < classes.size(); ++b) {
      const linalg::Matrix between =
          between_class_kl_map(classes[a]->moments, classes[b]->moments);
      std::vector<stats::GridPoint> pts =
          dnvp(between, classes[a]->mask, classes[b]->mask, config.points_per_pair);
      if (pts.empty() && config.allow_fallback_points) {
        pts = stats::top_k(stats::local_maxima_2d(between), config.points_per_pair);
      }
      per_pair.push_back(std::move(pts));
    }
  }
  p.points_ = unify_points(per_pair);
  if (p.points_.empty()) {
    throw std::runtime_error("FeaturePipeline::fit: no feature points survived selection");
  }
  if (p.points_.size() > config.max_unified_points) {
    p.points_.resize(config.max_unified_points);  // already KL-ranked
  }

  // Pass 2: extract selected coefficients for every training trace, fanned
  // across the pool.  Rows land in their trace-order slots and every row is
  // computed independently, so the fitted scaler/PCA never depend on the
  // worker count.
  std::vector<const std::vector<double>*> samples;
  for (const ClassData* c : classes) {
    for (const sim::Trace& t : c->preprocessed) samples.push_back(&t.samples);
  }
  std::vector<linalg::Vector> rows(samples.size());
  trace_parallel(samples.size(), config.workers, [&](std::size_t i, dsp::CwtWorkspace& ws) {
    rows[i] = extract_features(p.cwt_, *samples[i], p.points_, ws);
  });
  linalg::Matrix x = linalg::Matrix::from_rows(rows);

  if (config.column_standardization) {
    p.scaler_ = stats::ColumnScaler::fit(x);
    x = p.scaler_.transform(x);
  }
  p.pca_ = stats::Pca::fit(x, config.pca_components);
  p.index_points();
  return p;
}

void FeaturePipeline::index_points() {
  point_js_.resize(points_.size());
  point_ks_.resize(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    point_js_[i] = points_[i].j;
    point_ks_[i] = points_[i].k;
  }
}

FeaturePipeline FeaturePipeline::from_parts(PipelineConfig config,
                                            std::vector<stats::GridPoint> points,
                                            stats::ColumnScaler scaler, stats::Pca pca,
                                            std::size_t grid_size) {
  if (points.empty()) {
    throw std::invalid_argument("FeaturePipeline::from_parts: no feature points");
  }
  FeaturePipeline p;
  p.config_ = config;
  p.cwt_ = dsp::Cwt(config.cwt);
  p.points_ = std::move(points);
  p.scaler_ = std::move(scaler);
  p.pca_ = std::move(pca);
  p.grid_size_ = grid_size;
  p.index_points();
  return p;
}

FeaturePipeline FeaturePipeline::renormalized(const sim::TraceSet& recal,
                                              bool rescale) const {
  if (points_.empty()) throw std::runtime_error("FeaturePipeline: not fitted");
  if (scaler_.dim() == 0) {
    throw std::logic_error(
        "FeaturePipeline::renormalized: pipeline was fitted without "
        "column_standardization");
  }
  if (recal.empty()) {
    throw std::invalid_argument("FeaturePipeline::renormalized: empty corpus");
  }
  // Selected-point features of the recalibration traces, in the pre-scaler
  // space the original column statistics were fitted in.
  std::vector<linalg::Vector> rows(recal.size());
  trace_parallel(recal.size(), config_.workers, [&](std::size_t i, dsp::CwtWorkspace& ws) {
    const std::vector<double> prep =
        config_.per_trace_normalization
            ? normalize_window(recal[i].samples, recal[i].meta.gain_estimate)
            : recal[i].samples;
    rows[i] = extract_features(cwt_, prep, points_, ws);
  });
  const stats::ColumnScaler observed =
      stats::ColumnScaler::fit(linalg::Matrix::from_rows(rows));

  // Shrink the re-centring towards the training means when the budget is
  // tiny: with n recalibration traces the observed mean carries O(1/sqrt(n))
  // estimator noise, and a raw swap at n ~ 5 can cost more than the shift it
  // removes.  alpha -> 1 within a few dozen traces.
  const double n = static_cast<double>(recal.size());
  constexpr double kMeanShrink = 4.0;
  const double alpha = n / (n + kMeanShrink);
  linalg::Vector mean = scaler_.mean();
  for (std::size_t c = 0; c < mean.size(); ++c) {
    mean[c] += alpha * (observed.mean()[c] - mean[c]);
  }
  FeaturePipeline out = *this;
  out.scaler_ = stats::ColumnScaler::from_parts(
      std::move(mean), rescale ? observed.stddev() : scaler_.stddev());
  return out;
}

std::vector<double> FeaturePipeline::preprocess_window(const sim::Trace& trace,
                                                       bool per_trace_normalization) {
  if (!per_trace_normalization) return trace.samples;
  return normalize_window(trace.samples, trace.meta.gain_estimate);
}

linalg::Vector FeaturePipeline::transform_prepared(const std::vector<double>& prepared,
                                                   std::size_t components,
                                                   dsp::CwtWorkspace& ws) const {
  if (points_.empty()) throw std::runtime_error("FeaturePipeline: not fitted");
  linalg::Vector v = extract_features(cwt_, prepared, points_, ws);
  if (config_.column_standardization) v = scaler_.transform(v);
  return pca_.transform(v, components);
}

linalg::Matrix FeaturePipeline::transform_prepared_batch(
    std::span<const std::vector<double>* const> prepared, std::size_t components,
    dsp::CwtBatchWorkspace& ws) const {
  const std::size_t n = dsp::Cwt::marshal(prepared, ws.soa_scratch());
  return transform_soa_batch(ws.soa_scratch(), n, prepared.size(), components,
                             ws);
}

linalg::Matrix FeaturePipeline::transform_soa_batch(
    std::span<const double> soa, std::size_t n, std::size_t lanes,
    std::size_t components, dsp::CwtBatchWorkspace& ws) const {
  if (points_.empty()) throw std::runtime_error("FeaturePipeline: not fitted");

  // Stage 1: sparse feature-point gathers for the whole batch in one pass
  // over each scale row.  F is point-major SoA: F(p, w) = point p of window w.
  linalg::Matrix f = cwt_.coefficients_soa(soa, n, lanes, point_js_, point_ks_, ws);

  // Stage 2: column standardization in place -- the exact (x - m) / s of
  // ColumnScaler::transform, lane-parallel.  Folding the PCA mean in here
  // too would change (f - m)/s - pm into one expression the compiler may
  // re-associate, so it stays a separate subtraction below.
  const std::size_t k = std::min(components, pca_.num_components());
  if (f.rows() != pca_.input_dim()) {
    throw std::invalid_argument("Pca::transform: dim mismatch");
  }
  if (config_.column_standardization) {
    const linalg::Vector& smean = scaler_.mean();
    const linalg::Vector& sstd = scaler_.stddev();
    for (std::size_t p = 0; p < f.rows(); ++p) {
      double* __restrict frow = f.row(p).data();
      const double m = smean[p], s = sstd[p];
      for (std::size_t l = 0; l < lanes; ++l) frow[l] = (frow[l] - m) / s;
    }
  }

  // Centering: the scalar Pca::transform subtracts pca_mean[p] inside its
  // reduction, once per (point, component).  Subtracting it here is the same
  // IEEE operation performed once per (point, lane) and reused by every
  // component row, so projections stay bit-identical while the inner loop
  // below becomes a pure multiply-add.
  const linalg::Vector& pmean = pca_.mean();
  const std::size_t np = f.rows();
  for (std::size_t p = 0; p < np; ++p) {
    double* __restrict frow = f.row(p).data();
    const double pm = pmean[p];
    for (std::size_t l = 0; l < lanes; ++l) frow[l] -= pm;
  }

  // Stage 3: PCA projection, component-outer with register-tiled lanes.
  // Each output row c accumulates centered-f * axis over points in ascending
  // order -- the scalar Pca::transform reduction -- but a linalg::LaneTile
  // of lanes rides in registers across the whole point loop, so the row
  // costs zero stores per point instead of one per (point, lane).  Tiling
  // picks which lane runs when; each lane's sum order is untouched, so
  // columns stay bit-identical to the scalar pipeline.
  const linalg::Matrix& axes = pca_.components();
  const double* __restrict fbase = f.row(0).data();
  linalg::Matrix z(k, lanes, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double* __restrict zrow = z.row(c).data();
    std::size_t l0 = 0;
    for (; l0 + linalg::kLaneTile <= lanes; l0 += linalg::kLaneTile) {
      linalg::LaneTile acc;
      for (std::size_t p = 0; p < np; ++p) {
        acc.mul_add(axes(p, c), fbase + p * lanes + l0);
      }
      acc.store(zrow + l0);
    }
    for (; l0 < lanes; ++l0) {
      double a = 0.0;
      for (std::size_t p = 0; p < np; ++p) {
        a += fbase[p * lanes + l0] * axes(p, c);
      }
      zrow[l0] = a;
    }
  }
  return z;
}

linalg::Vector FeaturePipeline::transform_one(const sim::Trace& trace,
                                              std::size_t components,
                                              dsp::CwtWorkspace& ws) const {
  if (!config_.per_trace_normalization) {
    return transform_prepared(trace.samples, components, ws);
  }
  return transform_prepared(
      normalize_window(trace.samples, trace.meta.gain_estimate), components, ws);
}

linalg::Vector FeaturePipeline::transform(const sim::Trace& trace,
                                          std::size_t components) const {
  dsp::CwtWorkspace ws;
  return transform_one(trace, components, ws);
}

linalg::Vector FeaturePipeline::transform(const std::vector<double>& samples,
                                          std::size_t components) const {
  sim::Trace t;
  t.samples = samples;
  return transform(t, components);
}

ml::Dataset FeaturePipeline::transform(const LabeledTraces& input,
                                       std::size_t components) const {
  ml::Dataset out;
  std::vector<const sim::Trace*> flat;
  for (std::size_t c = 0; c < input.sets.size(); ++c) {
    for (const sim::Trace& t : *input.sets[c]) {
      flat.push_back(&t);
      out.y.push_back(input.labels[c]);
    }
  }
  std::vector<linalg::Vector> rows(flat.size());
  trace_parallel(flat.size(), config_.workers, [&](std::size_t i, dsp::CwtWorkspace& ws) {
    rows[i] = transform_one(*flat[i], components, ws);
  });
  out.x = linalg::Matrix::from_rows(rows);
  return out;
}

ml::Dataset FeaturePipeline::transform(const sim::TraceSet& traces, int label,
                                       std::size_t components) const {
  ml::Dataset out;
  out.y.assign(traces.size(), label);
  std::vector<linalg::Vector> rows(traces.size());
  trace_parallel(traces.size(), config_.workers, [&](std::size_t i, dsp::CwtWorkspace& ws) {
    rows[i] = transform_one(traces[i], components, ws);
  });
  out.x = linalg::Matrix::from_rows(rows);
  return out;
}

}  // namespace sidis::features

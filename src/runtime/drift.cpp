#include "runtime/drift.hpp"

#include <cmath>
#include <stdexcept>

#include "core/fusion.hpp"

namespace sidis::runtime {

namespace {

/// Variance floor: features the training corpus held (numerically) constant
/// carry no drift information at this scale and must not divide to infinity.
constexpr double kVarFloor = 1e-12;

}  // namespace

std::string to_string(DriftTrigger trigger) {
  switch (trigger) {
    case DriftTrigger::kFeatureShift: return "feature_shift";
    case DriftTrigger::kFeatureSpread: return "feature_spread";
    case DriftTrigger::kRejectRate: return "reject_rate";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(std::shared_ptr<const core::HierarchicalDisassembler> model,
                           DriftConfig config)
    : model_(std::move(model)), config_(config) {
  if (model_ == nullptr || !model_->has_training_moments()) {
    throw std::invalid_argument(
        "DriftMonitor: model carries no training moments (serialize v3)");
  }
  const core::FeatureMoments& m = model_->training_moments();
  train_mean_ = m.mean;
  train_var_ = m.variance;
  ewma_mean_ = train_mean_;
  ewma_var_ = train_var_;
}

void DriftMonitor::observe(const sim::Trace& trace, const core::Disassembly& result) {
  observe_features(model_->monitor_features(trace),
                   result.verdict == core::Verdict::kRejected);
}

void DriftMonitor::observe_features(const linalg::Vector& features, bool rejected) {
  if (features.size() != train_mean_.size()) {
    throw std::invalid_argument("DriftMonitor: feature dimension mismatch");
  }
  const double a = config_.alpha;
  for (std::size_t i = 0; i < features.size(); ++i) {
    // Classic EWMA mean/variance pair: the variance update uses the residual
    // against the *previous* mean, which keeps it unbiased to first order.
    const double residual = features[i] - ewma_mean_[i];
    ewma_mean_[i] += a * residual;
    ewma_var_[i] = (1.0 - a) * (ewma_var_[i] + a * residual * residual);
  }
  reject_rate_ += config_.reject_alpha * ((rejected ? 1.0 : 0.0) - reject_rate_);
  ++observations_;
  ++since_rebase_;
  recompute_scores();

  if (since_rebase_ <= config_.warmup) {
    streak_ = 0;
    return;
  }
  DriftTrigger trigger = DriftTrigger::kFeatureShift;
  bool triggered = false;
  if (z_rms_ >= config_.z_threshold) {
    triggered = true;
    trigger = DriftTrigger::kFeatureShift;
  } else if (symmetric_kl_ >= config_.kl_threshold) {
    triggered = true;
    trigger = DriftTrigger::kFeatureSpread;
  } else if (reject_rate_ >= config_.reject_rate_threshold) {
    triggered = true;
    trigger = DriftTrigger::kRejectRate;
  }
  if (!triggered) {
    streak_ = 0;
    return;
  }
  ++streak_;
  if (streak_ < config_.consecutive) return;
  // Cooldown: warmup observations after a rebase double as the event
  // separation -- an event only fires when cooldown observations have
  // passed since the previous one.
  if (pending_.has_value()) return;
  if (events_raised_ > 0 && since_rebase_ < config_.cooldown) return;
  DriftEvent event;
  event.ordinal = events_raised_++;
  event.observation = observations_;
  event.trigger = trigger;
  event.z_rms = z_rms_;
  event.symmetric_kl = symmetric_kl_;
  event.reject_rate = reject_rate_;
  pending_ = event;
  // Restart the separation clock without touching the statistics: if drift
  // persists un-recalibrated, the next event fires one cooldown later.
  since_rebase_ = config_.warmup;
  streak_ = 0;
}

void DriftMonitor::recompute_scores() {
  // Stationary variance of an EWMA over iid draws: var * alpha / (2 - alpha).
  const double shrink = config_.alpha / (2.0 - config_.alpha);
  double z_sq_sum = 0.0;
  double kl_sum = 0.0;
  const std::size_t n = train_mean_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double vq = std::max(train_var_[i], kVarFloor);
    const double vp = std::max(ewma_var_[i], kVarFloor);
    const double delta = ewma_mean_[i] - train_mean_[i];
    const double z = delta / std::sqrt(vq * shrink);
    z_sq_sum += z * z;
    // Symmetrized KL of two univariate Gaussians:
    //   0.5 * [ (vp + d^2)/vq + (vq + d^2)/vp ] - 1
    kl_sum += 0.5 * ((vp + delta * delta) / vq + (vq + delta * delta) / vp) - 1.0;
  }
  z_rms_ = n == 0 ? 0.0 : std::sqrt(z_sq_sum / static_cast<double>(n));
  symmetric_kl_ = n == 0 ? 0.0 : kl_sum / static_cast<double>(n);
}

std::optional<DriftEvent> DriftMonitor::poll_event() {
  std::optional<DriftEvent> out;
  pending_.swap(out);
  return out;
}

void DriftMonitor::rebase() {
  ewma_mean_ = train_mean_;
  ewma_var_ = train_var_;
  z_rms_ = 0.0;
  symmetric_kl_ = 0.0;
  reject_rate_ = 0.0;
  since_rebase_ = 0;
  streak_ = 0;
  pending_.reset();
}

void DriftMonitor::rebind(std::shared_ptr<const core::HierarchicalDisassembler> model) {
  if (model == nullptr || !model->has_training_moments()) {
    throw std::invalid_argument(
        "DriftMonitor::rebind: model carries no training moments");
  }
  model_ = std::move(model);
  const core::FeatureMoments& m = model_->training_moments();
  train_mean_ = m.mean;
  train_var_ = m.variance;
  rebase();
}

namespace {

std::shared_ptr<const core::HierarchicalDisassembler> require_power(
    const std::shared_ptr<const core::FusedDisassembler>& fused) {
  if (fused == nullptr) {
    throw std::invalid_argument("FusedDriftMonitor: null fused model");
  }
  return fused->power_model();
}

}  // namespace

FusedDriftMonitor::FusedDriftMonitor(
    std::shared_ptr<const core::FusedDisassembler> fused, DriftConfig config)
    : power_(require_power(fused), config) {
  if (fused->em_model() != nullptr) {
    em_ = std::make_unique<DriftMonitor>(fused->em_model(), config);
  }
}

void FusedDriftMonitor::observe(const sim::Trace& trace,
                                const core::Disassembly& result) {
  power_.observe(sim::channel_view(trace, sim::Channel::kPower), result);
  if (em_ != nullptr && trace.has_em()) {
    em_->observe(sim::channel_view(trace, sim::Channel::kEm), result);
  }
}

std::optional<ChannelDriftEvent> FusedDriftMonitor::poll_event() {
  if (auto e = power_.poll_event()) {
    return ChannelDriftEvent{sim::Channel::kPower, *e};
  }
  if (em_ != nullptr) {
    if (auto e = em_->poll_event()) {
      return ChannelDriftEvent{sim::Channel::kEm, *e};
    }
  }
  return std::nullopt;
}

void FusedDriftMonitor::rebind_power(
    std::shared_ptr<const core::HierarchicalDisassembler> model) {
  power_.rebind(std::move(model));
}

void FusedDriftMonitor::rebind_em(
    std::shared_ptr<const core::HierarchicalDisassembler> model) {
  if (em_ == nullptr) {
    throw std::logic_error("FusedDriftMonitor::rebind_em: no EM channel");
  }
  em_->rebind(std::move(model));
}

}  // namespace sidis::runtime

#include "runtime/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/serialize.hpp"

namespace sidis::runtime {

namespace {

constexpr const char* kMagic = "sidis-bundle";
constexpr int kFormatVersion = 1;

[[noreturn]] void bad_artifact(const std::filesystem::path& p, const std::string& why) {
  throw std::runtime_error("model artifact '" + p.string() + "': " + why);
}

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '_' &&
        c != '-') {
      return false;
    }
  }
  // "." / ".." would escape the bundle directory.
  return name != "." && name != "..";
}

std::string version_filename(int version) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%06d.sidis", version);
  return buf;
}

/// Parses "v000123.sidis" back into 123; 0 when the name does not match.
int parse_version(const std::string& filename) {
  if (filename.size() < 8 || filename.front() != 'v') return 0;
  const std::size_t dot = filename.rfind(".sidis");
  if (dot == std::string::npos || dot + 6 != filename.size()) return 0;
  int v = 0;
  for (std::size_t i = 1; i < dot; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return 0;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

ModelRegistry::ModelRegistry(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path ModelRegistry::artifact_path(const std::string& name,
                                                   int version) const {
  return root_ / name / version_filename(version);
}

int ModelRegistry::save(const std::string& name,
                        const core::HierarchicalDisassembler& model) {
  if (!valid_name(name)) {
    throw std::invalid_argument("ModelRegistry::save: invalid bundle name '" + name +
                                "'");
  }
  std::ostringstream payload_stream;
  core::save_disassembler(payload_stream, model);
  const std::string payload = payload_stream.str();

  const int version = latest_version(name) + 1;
  const std::filesystem::path dir = root_ / name;
  std::filesystem::create_directories(dir);
  const std::filesystem::path final_path = artifact_path(name, version);
  const std::filesystem::path tmp_path = final_path.string() + ".tmp";

  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) bad_artifact(tmp_path, "cannot open for writing");
    os << kMagic << ' ' << kFormatVersion << ' ' << name << ' ' << version << ' '
       << payload.size() << ' ' << std::hex << fnv1a64(payload) << std::dec << '\n';
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os) bad_artifact(tmp_path, "write failed");
  }
  // Atomic publication: readers either see the whole artifact or none.
  std::filesystem::rename(tmp_path, final_path);
  return version;
}

namespace {

/// Reads and validates one artifact; returns its info and (optionally) the
/// payload bytes.
ArtifactInfo read_artifact(const std::filesystem::path& path, std::string* payload_out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) bad_artifact(path, "not found");

  std::string header;
  if (!std::getline(is, header)) bad_artifact(path, "missing header");
  std::istringstream hs(header);
  std::string magic, name;
  int format = 0, version = 0;
  std::uint64_t payload_bytes = 0, checksum = 0;
  if (!(hs >> magic >> format >> name >> version >> payload_bytes >> std::hex >>
        checksum)) {
    bad_artifact(path, "malformed header");
  }
  if (magic != kMagic) bad_artifact(path, "bad magic '" + magic + "'");
  if (format != kFormatVersion) {
    bad_artifact(path, "unsupported format version " + std::to_string(format));
  }

  std::string payload(payload_bytes, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    bad_artifact(path, "truncated payload");
  }
  if (is.peek() != std::ifstream::traits_type::eof()) {
    bad_artifact(path, "trailing bytes after payload");
  }
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != checksum) bad_artifact(path, "checksum mismatch (corrupted artifact)");

  ArtifactInfo info;
  info.name = std::move(name);
  info.version = version;
  info.payload_bytes = payload_bytes;
  info.checksum = checksum;
  info.path = path;
  if (payload_out != nullptr) *payload_out = std::move(payload);
  return info;
}

}  // namespace

core::HierarchicalDisassembler ModelRegistry::load(const std::string& name,
                                                   int version) const {
  const int v = version == 0 ? latest_version(name) : version;
  if (v == 0) {
    throw std::runtime_error("ModelRegistry::load: no versions of '" + name + "'");
  }
  std::string payload;
  read_artifact(artifact_path(name, v), &payload);
  std::istringstream ps(payload);
  return core::load_disassembler(ps);
}

ArtifactInfo ModelRegistry::info(const std::string& name, int version) const {
  const int v = version == 0 ? latest_version(name) : version;
  if (v == 0) {
    throw std::runtime_error("ModelRegistry::info: no versions of '" + name + "'");
  }
  std::string payload;
  return read_artifact(artifact_path(name, v), &payload);
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  if (!std::filesystem::exists(root_)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.is_directory() && !versions(entry.path().filename().string()).empty()) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> ModelRegistry::versions(const std::string& name) const {
  std::vector<int> out;
  const std::filesystem::path dir = root_ / name;
  if (!valid_name(name) || !std::filesystem::exists(dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const int v = parse_version(entry.path().filename().string());
    if (v > 0) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int ModelRegistry::latest_version(const std::string& name) const {
  const std::vector<int> v = versions(name);
  return v.empty() ? 0 : v.back();
}

}  // namespace sidis::runtime

// Self-scheduled recalibration: the policy half of the drift loop.
//
// DriftMonitor says *when* templates have rotted; this module decides *what
// to do about it*: spend K labeled traces per class from a pluggable
// CalibrationSource, run the existing CSA recalibration arms (renorm /
// refit, the same paths core::TransferEvaluator evaluates offline), and
// atomically publish the adapted model into the running engine via the
// hot-swap path -- optionally through the ModelRegistry first, so the
// artifact checksum becomes the published stage's stamp and every
// StreamResult is attributable to an on-disk version.
//
// The loop a deployment runs (tests/benches drive exactly this):
//
//   engine.submit(...); r = engine.poll();
//   monitor.observe(trace, r->value);
//   if (auto e = monitor.poll_event()) scheduler.on_drift(*e, monitor);
//
// Budget discipline: labeled traces are the scarce resource (each one costs
// a ground-truth execution on the monitored device), so the scheduler
// enforces a lifetime trace budget and refuses events it can no longer
// afford -- the event still counts in RuntimeStats::drift_events, the spend
// does not happen.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/hierarchical.hpp"
#include "core/transfer.hpp"
#include "runtime/registry.hpp"
#include "runtime/streaming.hpp"
#include "sim/acquisition.hpp"

namespace sidis::runtime {

class DriftMonitor;
struct DriftEvent;

/// Supplies labeled recalibration traces on demand -- the abstraction over
/// "go capture ground-truth windows on the deployed device right now".
/// Labels ride in TraceMeta::class_idx, as everywhere else in the corpus
/// plumbing.
class CalibrationSource {
 public:
  virtual ~CalibrationSource() = default;
  /// Captures `per_class` fresh traces of every class this source covers.
  /// Successive calls must reflect the *current* device state (a drifting
  /// device keeps drifting between events).
  virtual sim::TraceSet capture(std::size_t per_class) = 0;
};

/// CalibrationSource backed by a sim::AcquisitionCampaign: captures at the
/// source's current campaign progress (advance it as the stream progresses,
/// so recal traces carry the same drift state as the live windows).  Every
/// random draw comes from the source's own seeded RNG -- deterministic and
/// independent of the streamed corpus.
class CampaignCalibrationSource final : public CalibrationSource {
 public:
  /// The campaign must outlive the source.  `classes` lists the profiled
  /// class indices to capture; programs round-robin over
  /// [first_program, first_program + num_programs).
  CampaignCalibrationSource(const sim::AcquisitionCampaign& campaign,
                            std::vector<std::size_t> classes, int num_programs,
                            std::uint64_t seed, int first_program = 0);

  sim::TraceSet capture(std::size_t per_class) override;

  /// Campaign progress in [0, 1] stamped on subsequent captures.
  void set_progress(double progress) { progress_ = progress; }
  double progress() const { return progress_; }
  std::size_t traces_captured() const { return traces_captured_; }

 private:
  const sim::AcquisitionCampaign& campaign_;
  std::vector<std::size_t> classes_;
  int num_programs_;
  int first_program_;
  std::mt19937_64 rng_;
  double progress_ = 0.0;
  std::size_t traces_captured_ = 0;
};

/// Adapter that narrows a paired-capture source to one channel: captured
/// traces pass through sim::channel_views, so the consumer (a scheduler
/// recalibrating the EM channel model of a fused deployment) sees the same
/// single-channel shape that channel's model was profiled on.  The inner
/// source must outlive the adapter.
class ChannelCalibrationSource final : public CalibrationSource {
 public:
  ChannelCalibrationSource(CalibrationSource& inner, sim::Channel channel)
      : inner_(inner), channel_(channel) {}

  sim::TraceSet capture(std::size_t per_class) override {
    return sim::channel_views(inner_.capture(per_class), channel_);
  }

  sim::Channel channel() const { return channel_; }

 private:
  CalibrationSource& inner_;
  sim::Channel channel_;
};

struct RecalPolicy {
  /// Labeled traces per class requested from the source per drift event.
  std::size_t traces_per_class = 4;
  /// Lifetime cap on labeled traces; events the remaining budget cannot
  /// cover are declined (still counted as drift events).
  std::size_t trace_budget = 64;
  /// Which CSA arm to run (core::TransferEvaluator semantics): kRenorm
  /// re-centres the column scalers only; kRefit additionally retrains the
  /// per-level classifiers on refit_base + the fresh corpus.
  core::RecalMode mode = core::RecalMode::kRenorm;
  /// Renorm variant: also rescale column stddevs (see
  /// FeaturePipeline::renormalized).
  bool rescale = false;
  /// Bundle name used when a registry is attached.
  std::string registry_name = "drift-recal";
  /// Escalation: when a kRenorm publish failed to quiet the monitor -- the
  /// monitor re-fires within `escalation_window` observations of the
  /// previous successful publish, i.e. as soon as its own cooldown allows --
  /// run the kRefit arm for this event instead.  A renorm only moves the
  /// column scalers; a shift it cannot express (boundary rotation, spread
  /// change) keeps the statistics raised, and repeating the same cheap arm
  /// would burn the trace budget without fixing anything.  Requires
  /// refit_base, like mode == kRefit.
  bool escalate_to_refit = false;
  /// Observation span after a publish within which a re-fire counts as "the
  /// renorm did not take".  0 derives warmup + consecutive + cooldown from
  /// the monitor's config at event time -- one observation more than the
  /// earliest moment the rebased monitor can honestly re-fire, so only
  /// back-to-back alarms escalate.
  std::uint64_t escalation_window = 0;
};

/// What one on_drift() call did.
struct RecalOutcome {
  bool performed = false;        ///< false: declined (budget) or failed
  std::size_t traces_spent = 0;  ///< fresh labeled traces consumed
  std::uint64_t stamp = 0;       ///< stage stamp published to the engine
  int registry_version = 0;      ///< stored version (0 without a registry)
  core::RecalMode mode = core::RecalMode::kRenorm;  ///< arm actually run
  bool escalated = false;        ///< mode was escalated beyond the policy's
  std::string reason;            ///< set when performed == false
};

class RecalibrationScheduler {
 public:
  /// `engine` and `source` must outlive the scheduler; `model` is the
  /// currently served model (shared -- the scheduler keeps successors alive
  /// for the engine's stage closures).  `registry`, when non-null, receives
  /// every recalibrated model before it is swapped in, and the artifact
  /// checksum stamps the published stage.  `refit_base`, when non-null, is
  /// the profiling corpus mixed into kRefit retrains (a K-traces/class
  /// corpus alone cannot estimate class covariances); required for kRefit.
  RecalibrationScheduler(StreamingDisassembler& engine,
                         std::shared_ptr<const core::HierarchicalDisassembler> model,
                         CalibrationSource& source, RecalPolicy policy = {},
                         ModelRegistry* registry = nullptr,
                         const core::ProfilingData* refit_base = nullptr);

  /// Consumes one drift event: spends budget, recalibrates, publishes via
  /// hot-swap, rebinds + rebases `monitor` onto the successor model.
  /// Records drift_events / recalibrations / recal_traces_spent on the
  /// engine either way.
  RecalOutcome on_drift(const DriftEvent& event, DriftMonitor& monitor);

  /// How the recalibrated model reaches the serving tier.  Default: the
  /// engine's shared-ptr swap_model (single-channel deployment).  A fused
  /// deployment overrides this to rebind ONE channel of a FusedDisassembler
  /// and republish a fused stage -- the other channel keeps serving
  /// untouched; the scheduler itself stays channel-agnostic (it maintains
  /// whichever channel model it was constructed around, with that channel's
  /// CalibrationSource, e.g. a ChannelCalibrationSource).
  using Publisher = std::function<void(
      std::shared_ptr<const core::HierarchicalDisassembler> model,
      std::uint64_t stamp)>;
  void set_publisher(Publisher publisher) { publisher_ = std::move(publisher); }

  const std::shared_ptr<const core::HierarchicalDisassembler>& active_model() const {
    return model_;
  }
  std::size_t traces_spent() const { return traces_spent_; }
  std::size_t budget_remaining() const {
    return policy_.trace_budget - traces_spent_;
  }
  const RecalPolicy& policy() const { return policy_; }

 private:
  StreamingDisassembler& engine_;
  std::shared_ptr<const core::HierarchicalDisassembler> model_;
  CalibrationSource& source_;
  RecalPolicy policy_;
  ModelRegistry* registry_;
  const core::ProfilingData* refit_base_;
  Publisher publisher_;  ///< empty = engine_.swap_model
  std::size_t traces_spent_ = 0;
  std::uint64_t local_stamp_ = 0;  ///< registry-less stamp sequence
  /// Monitor observation count at the last successful publish; drives the
  /// renorm -> refit escalation (see RecalPolicy::escalate_to_refit).
  std::uint64_t last_publish_observation_ = 0;
  bool has_published_ = false;
};

}  // namespace sidis::runtime

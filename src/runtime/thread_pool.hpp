// Fixed-size worker pool over a BoundedQueue of type-erased jobs.
//
// Header-only (see bounded_queue.hpp for why): core::profile_device borrows
// the pool for campaign parallelism, and the streaming engine builds its
// trace pipeline on top of it.  Workers are std::jthread, so destruction is
// exception-safe: the queue closes, queued jobs finish, threads join.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"

namespace sidis::runtime {

/// Number of workers to use when the caller passes 0 ("auto").
inline std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Resolves a worker-count parameter (0 = auto) against a job count:
/// never more lanes than jobs, never fewer than one.
inline std::size_t resolve_workers(std::size_t workers, std::size_t jobs) {
  const std::size_t w = workers == 0 ? default_workers() : workers;
  return std::max<std::size_t>(1, std::min(w, jobs));
}

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = hardware concurrency).  `queue_capacity`
  /// bounds the backlog of not-yet-started jobs; submit() blocks beyond it.
  explicit ThreadPool(std::size_t workers = 0, std::size_t queue_capacity = 256)
      : queue_(queue_capacity) {
    const std::size_t n = workers == 0 ? default_workers() : workers;
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this] {
        while (std::optional<std::function<void()>> job = queue_.pop()) (*job)();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Enqueues one job; blocks while the backlog is at capacity.  Returns
  /// false after shutdown().  Jobs must not throw -- wrap and capture.
  bool submit(std::function<void()> job) { return queue_.push(std::move(job)); }

  /// Stops accepting jobs, runs the backlog to completion, joins.
  void shutdown() {
    queue_.close();
    for (std::jthread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  std::size_t size() const { return threads_.size(); }
  std::size_t queue_high_water() const { return queue_.high_water(); }

 private:
  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::jthread> threads_;
};

/// Runs body(i) for i in [0, n) across `workers` threads (0 = auto; <= 1
/// runs inline) and blocks until every index finished.  The first exception
/// thrown by any body is rethrown on the calling thread after the barrier;
/// remaining indices still run (bodies should check their own abort flag for
/// early exit).  Iteration order across threads is unspecified, so bodies
/// must be independent -- give each index its own RNG stream and output slot.
template <typename Body>
void parallel_for(std::size_t n, std::size_t workers, Body&& body) {
  const std::size_t w = std::min(workers == 0 ? default_workers() : workers, n);
  if (w <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    ThreadPool pool(w, n);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.shutdown();  // barrier: runs the backlog, joins the workers
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sidis::runtime

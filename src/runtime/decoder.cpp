#include "runtime/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "avr/grouping.hpp"

namespace sidis::runtime {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First index of the maximum (ties break low, matching scored_from_scores).
std::size_t argmax_first(const linalg::Vector& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

void normalize_shift(linalg::Vector& v) {
  const double m = v[argmax_first(v)];
  if (!std::isfinite(m)) return;  // degenerate row; keep as-is
  for (double& x : v) x -= m;
}

}  // namespace

SequenceDecoder::SequenceDecoder(std::vector<std::size_t> classes,
                                 std::shared_ptr<const core::TransitionPrior> prior,
                                 SequenceDecoderConfig config)
    : classes_(std::move(classes)), config_(config) {
  if (classes_.empty()) {
    throw std::invalid_argument("SequenceDecoder: empty class support");
  }
  if (prior == nullptr) {
    throw std::invalid_argument("SequenceDecoder: null transition prior");
  }
  const std::size_t n = classes_.size();
  for (const std::size_t cls : classes_) {
    if (cls >= prior->num_classes()) {
      throw std::invalid_argument(
          "SequenceDecoder: prior does not cover the class support");
    }
  }
  // The transition matrix restricted to the support, weighted once.  Rows are
  // intentionally NOT renormalized over the support: the prior's relative
  // preferences among the profiled classes are what matters, and a constant
  // per-row offset never changes a Viterbi path.
  log_trans_ = linalg::Matrix(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      log_trans_(a, b) =
          config_.prior_weight * prior->log_prob(classes_[a], classes_[b]);
    }
  }
}

void SequenceDecoder::advance(Node& node, const Node* prev) const {
  const std::size_t n = classes_.size();
  node.delta.resize(n);
  if (prev == nullptr) {
    node.backptr.clear();
    if (last_committed_.has_value()) {
      // The lattice emptied right after a commit (lag 0 does this on every
      // push): the stream continues, so condition on the committed state.
      for (std::size_t c = 0; c < n; ++c) {
        node.delta[c] = log_trans_(*last_committed_, c) + node.emissions[c];
      }
    } else {
      node.delta = node.emissions;
    }
    normalize_shift(node.delta);
    return;
  }
  node.backptr.assign(n, 0);
  std::vector<std::size_t> beam;
  const bool pruned = config_.beam > 0 && config_.beam < n;
  if (pruned) {
    beam.resize(n);
    std::iota(beam.begin(), beam.end(), std::size_t{0});
    // Highest predecessor score first, index-ascending on ties, so pruning
    // is deterministic.
    std::stable_sort(beam.begin(), beam.end(), [&](std::size_t a, std::size_t b) {
      return prev->delta[a] > prev->delta[b];
    });
    beam.resize(config_.beam);
  }
  for (std::size_t c = 0; c < n; ++c) {
    double best = -kInf;
    std::size_t bp = pruned ? beam[0] : 0;
    if (pruned) {
      for (const std::size_t p : beam) {
        const double v = prev->delta[p] + log_trans_(p, c);
        if (v > best) {
          best = v;
          bp = p;
        }
      }
    } else {
      for (std::size_t p = 0; p < n; ++p) {
        const double v = prev->delta[p] + log_trans_(p, c);
        if (v > best) {
          best = v;
          bp = p;
        }
      }
    }
    node.delta[c] = best + node.emissions[c];
    node.backptr[c] = bp;
  }
  // Keep scores bounded over unbounded streams; a uniform shift changes no
  // path decision and no confidence margin.
  normalize_shift(node.delta);
}

SmoothedWindow SequenceDecoder::emit(const Node& node, std::size_t state,
                                     double confidence, bool converged) {
  SmoothedWindow w;
  w.value = node.window;
  w.raw_class = w.value.class_idx;
  w.confidence = confidence;
  w.converged = converged;
  const std::size_t cls = classes_[state];
  if (cls != w.value.class_idx) {
    w.smoothed = true;
    ++smoothed_count_;
    w.value.class_idx = cls;
    w.value.group = avr::group_of_class(cls);
    // Operand recoveries belong to the raw class; drop the ones the smoothed
    // class has no slot for (a recovery for a slot it does have is kept --
    // the register-level classifier never saw the class anyway).
    if (!avr::class_uses_rd(cls)) w.value.rd.reset();
    if (!avr::class_uses_rr(cls)) w.value.rr.reset();
  }
  if (w.value.verdict == core::Verdict::kOk &&
      confidence < config_.min_confidence) {
    w.value.verdict = core::Verdict::kDegraded;
  }
  if (w.value.verdict == core::Verdict::kRejected &&
      confidence >= config_.repair_confidence) {
    w.value.verdict = core::Verdict::kDegraded;
  }
  return w;
}

void SequenceDecoder::commit_front() {
  const std::size_t n = classes_.size();
  const std::size_t depth = lattice_.size();

  // Backtrace from the frontier argmax down to the front.
  std::size_t s = argmax_first(lattice_.back().delta);
  for (std::size_t t = depth - 1; t > 0; --t) s = lattice_[t].backptr[s];
  const std::size_t s0 = s;

  // Max-marginal confidence of the front decision: best full-lattice path
  // through each front state (delta is trivial at the front; beta carries
  // the suffix).
  double confidence = kInf;
  if (n > 1) {
    linalg::Vector beta(n, 0.0);
    linalg::Vector prev_beta(n);
    for (std::size_t t = depth - 1; t > 0; --t) {
      const Node& next = lattice_[t];
      for (std::size_t c = 0; c < n; ++c) {
        double best = -kInf;
        for (std::size_t c2 = 0; c2 < n; ++c2) {
          const double v = log_trans_(c, c2) + next.emissions[c2] + beta[c2];
          if (v > best) best = v;
        }
        prev_beta[c] = best;
      }
      beta.swap(prev_beta);
    }
    const linalg::Vector& delta = lattice_.front().delta;
    double committed = -kInf, runner = -kInf;
    for (std::size_t c = 0; c < n; ++c) {
      const double mm = delta[c] + beta[c];
      if (c == s0) {
        committed = mm;
      } else {
        runner = std::max(runner, mm);
      }
    }
    confidence = runner == -kInf ? kInf : committed - runner;
  }

  // Converged exactly when every state one step ahead already descends from
  // s0 -- then every extension of the stream must route through s0 here, so
  // the commit is what offline Viterbi conditioned on the emitted prefix
  // would pick no matter what arrives later.
  const bool fused =
      depth > 1 && std::all_of(lattice_[1].backptr.begin(),
                               lattice_[1].backptr.end(),
                               [&](std::size_t p) { return p == s0; });
  const bool converged = fused || n == 1;

  const double base = lattice_.front().delta[s0];
  out_.push_back(emit(lattice_.front(), s0, confidence, converged));
  lattice_.pop_front();
  if (lattice_.empty()) {
    last_committed_ = s0;  // the next push chains from here
    return;
  }

  // Rebase: condition the new front on the committed state, so emitted
  // decisions always chain into a connected path.  When the lattice already
  // fused through s0 the reconditioned scores are what advance() computed,
  // so nothing needs recomputing.
  Node& front = lattice_.front();
  if (!fused) {
    for (std::size_t c = 0; c < n; ++c) {
      front.delta[c] = base + log_trans_(s0, c) + front.emissions[c];
    }
    normalize_shift(front.delta);
    for (std::size_t t = 1; t < lattice_.size(); ++t) {
      Node& cur = lattice_[t];
      const linalg::Vector old_delta = cur.delta;
      const std::vector<std::size_t> old_backptr = cur.backptr;
      advance(cur, &lattice_[t - 1]);
      // Downstream of the first unchanged node nothing can differ.
      if (cur.delta == old_delta && cur.backptr == old_backptr) break;
    }
  }
  front.backptr.clear();
}

void SequenceDecoder::push(core::Disassembly window) {
  const std::size_t n = classes_.size();
  if (window.log_posterior.size() != n) {
    // No posterior to decode on: finish the lattice and pass the window
    // through untouched (plain classify() results, foreign supports).  The
    // chain is broken -- whatever follows starts a fresh segment.
    for (SmoothedWindow& w : flush()) out_.push_back(std::move(w));
    last_committed_.reset();
    SmoothedWindow w;
    w.value = std::move(window);
    w.raw_class = w.value.class_idx;
    out_.push_back(std::move(w));
    return;
  }
  Node node;
  node.emissions = window.log_posterior;
  node.window = std::move(window);
  advance(node, lattice_.empty() ? nullptr : &lattice_.back());
  lattice_.push_back(std::move(node));
  if (lattice_.size() > config_.lag) commit_front();
}

std::optional<SmoothedWindow> SequenceDecoder::poll() {
  if (out_.empty()) return std::nullopt;
  SmoothedWindow w = std::move(out_.front());
  out_.pop_front();
  return w;
}

std::vector<SmoothedWindow> SequenceDecoder::flush() {
  const std::size_t n = classes_.size();
  if (!lattice_.empty()) {
    const std::size_t depth = lattice_.size();
    // Offline decode of the tail: exact Viterbi over what remains (already
    // conditioned on the last committed state via the rebase).
    std::vector<std::size_t> path(depth);
    std::size_t s = argmax_first(lattice_.back().delta);
    path[depth - 1] = s;
    for (std::size_t t = depth - 1; t > 0; --t) {
      s = lattice_[t].backptr[s];
      path[t - 1] = s;
    }
    // Suffix scores for per-window max-marginal confidence.
    std::vector<linalg::Vector> beta(depth);
    beta[depth - 1].assign(n, 0.0);
    for (std::size_t t = depth - 1; t > 0; --t) {
      const Node& next = lattice_[t];
      beta[t - 1].assign(n, -kInf);
      for (std::size_t c = 0; c < n; ++c) {
        double best = -kInf;
        for (std::size_t c2 = 0; c2 < n; ++c2) {
          const double v = log_trans_(c, c2) + next.emissions[c2] + beta[t][c2];
          if (v > best) best = v;
        }
        beta[t - 1][c] = best;
      }
    }
    for (std::size_t t = 0; t < depth; ++t) {
      double confidence = kInf;
      if (n > 1) {
        double committed = -kInf, runner = -kInf;
        for (std::size_t c = 0; c < n; ++c) {
          const double mm = lattice_[t].delta[c] + beta[t][c];
          if (c == path[t]) {
            committed = mm;
          } else {
            runner = std::max(runner, mm);
          }
        }
        confidence = runner == -kInf ? kInf : committed - runner;
      }
      out_.push_back(emit(lattice_[t], path[t], confidence, /*converged=*/true));
    }
    lattice_.clear();
  }
  last_committed_.reset();  // flush ends the stream; reuse starts fresh
  std::vector<SmoothedWindow> result;
  result.reserve(out_.size());
  for (SmoothedWindow& w : out_) result.push_back(std::move(w));
  out_.clear();
  return result;
}

}  // namespace sidis::runtime

#include "runtime/recal.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "avr/program.hpp"
#include "runtime/drift.hpp"

namespace sidis::runtime {

CampaignCalibrationSource::CampaignCalibrationSource(
    const sim::AcquisitionCampaign& campaign, std::vector<std::size_t> classes,
    int num_programs, std::uint64_t seed, int first_program)
    : campaign_(campaign),
      classes_(std::move(classes)),
      num_programs_(num_programs),
      first_program_(first_program),
      rng_(seed) {
  if (classes_.empty()) {
    throw std::invalid_argument("CampaignCalibrationSource: no classes");
  }
  if (num_programs_ < 1) {
    throw std::invalid_argument("CampaignCalibrationSource: num_programs >= 1");
  }
}

sim::TraceSet CampaignCalibrationSource::capture(std::size_t per_class) {
  sim::TraceSet out;
  out.reserve(per_class * classes_.size());
  for (std::size_t cls : classes_) {
    for (std::size_t i = 0; i < per_class; ++i) {
      // Same construction as AcquisitionCampaign::capture_class, except the
      // campaign progress is pinned to "now" instead of ramping 0..1: recal
      // traces must carry the same drift state as the live stream.
      const int pid =
          first_program_ + static_cast<int>(i % static_cast<std::size_t>(num_programs_));
      const sim::ProgramContext prog = sim::ProgramContext::make(pid);
      const avr::Instruction target = avr::random_instance(cls, rng_, {});
      out.push_back(campaign_.capture_trace(target, prog, rng_, progress_));
    }
  }
  traces_captured_ += out.size();
  return out;
}

RecalibrationScheduler::RecalibrationScheduler(
    StreamingDisassembler& engine,
    std::shared_ptr<const core::HierarchicalDisassembler> model,
    CalibrationSource& source, RecalPolicy policy, ModelRegistry* registry,
    const core::ProfilingData* refit_base)
    : engine_(engine),
      model_(std::move(model)),
      source_(source),
      policy_(policy),
      registry_(registry),
      refit_base_(refit_base) {
  if (model_ == nullptr) {
    throw std::invalid_argument("RecalibrationScheduler: null model");
  }
  if ((policy_.mode == core::RecalMode::kRefit || policy_.escalate_to_refit) &&
      refit_base_ == nullptr) {
    throw std::invalid_argument(
        "RecalibrationScheduler: kRefit needs a refit_base profiling corpus");
  }
}

RecalOutcome RecalibrationScheduler::on_drift(const DriftEvent& event,
                                              DriftMonitor& monitor) {
  engine_.record_drift_event();
  RecalOutcome outcome;
  outcome.mode = policy_.mode;

  // Escalation: a re-fire hot on the heels of the previous publish means the
  // renorm arm did not remove the shift -- run the refit arm this round.
  if (policy_.escalate_to_refit && policy_.mode == core::RecalMode::kRenorm &&
      has_published_ && event.observation >= last_publish_observation_) {
    std::uint64_t window = policy_.escalation_window;
    if (window == 0) {
      const DriftConfig& dc = monitor.config();
      window = dc.warmup + dc.consecutive + dc.cooldown;
    }
    if (event.observation - last_publish_observation_ <= window) {
      outcome.mode = core::RecalMode::kRefit;
      outcome.escalated = true;
    }
  }

  if (policy_.traces_per_class == 0) {
    outcome.reason = "policy requests zero traces per event";
    return outcome;
  }
  if (traces_spent_ >= policy_.trace_budget) {
    outcome.reason = "trace budget exhausted";
    return outcome;
  }
  // Per-event cost is per_class x covered classes, which only the source
  // knows -- so capture first and refuse afterwards if the round overshot
  // the remaining budget (the accounting stays exact either way).
  const sim::TraceSet fresh = source_.capture(policy_.traces_per_class);
  if (fresh.empty()) {
    outcome.reason = "calibration source returned no traces";
    return outcome;
  }
  if (traces_spent_ + fresh.size() > policy_.trace_budget) {
    outcome.reason = "event cost exceeds remaining trace budget";
    return outcome;
  }

  // Clone through the serializer (the QDA-only template path, same as
  // core::TransferEvaluator) so the served model is never mutated in place.
  auto clone = std::make_shared<core::HierarchicalDisassembler>([&] {
    std::stringstream ss;
    model_->save(ss);
    return core::HierarchicalDisassembler::load(ss);
  }());
  clone->recalibrate(fresh, policy_.rescale);
  if (outcome.mode == core::RecalMode::kRefit) {
    core::ProfilingData aug;
    aug.classes = refit_base_->classes;
    for (const sim::Trace& t : fresh) aug.classes[t.meta.class_idx].push_back(t);
    clone->refit_classifiers(aug);
  }

  std::uint64_t stamp = 0;
  if (registry_ != nullptr) {
    outcome.registry_version = registry_->save(policy_.registry_name, *clone);
    stamp = registry_->info(policy_.registry_name, outcome.registry_version).checksum;
  } else {
    stamp = ++local_stamp_;
  }

  // Publish: the stage closures co-own the clone, so the model lives exactly
  // as long as some worker can still pin its stage.  The shared_ptr
  // swap_model overload installs classify AND classify_batch, keeping the
  // batched serving path hot across the swap.  A custom publisher (fused
  // deployments rebinding one channel) replaces the swap, not the telemetry.
  std::shared_ptr<const core::HierarchicalDisassembler> published = clone;
  if (publisher_) {
    publisher_(published, stamp);
  } else {
    engine_.swap_model(published, stamp);
  }
  engine_.record_recalibration(fresh.size());
  traces_spent_ += fresh.size();
  model_ = published;
  last_publish_observation_ = event.observation;
  has_published_ = true;
  monitor.rebind(published);

  outcome.performed = true;
  outcome.traces_spent = fresh.size();
  outcome.stamp = stamp;
  return outcome;
}

}  // namespace sidis::runtime

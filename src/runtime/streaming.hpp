// Parallel streaming disassembly engine -- the serving layer between
// `core::disassemble` and a live trace stream.
//
// The paper's real-time framing (Sec. 5.4) is a producer/consumer problem:
// per-instruction windows arrive at capture rate, classification costs a few
// hundred kernel correlations each, so the only way to keep up is to fan the
// windows out across cores.  The engine does exactly that while preserving
// the one property a disassembler cannot lose: *output order is submission
// order*, no matter how out-of-order the workers complete.
//
//   submit(trace) -> seq       bounded, blocking backpressure
//        |                     (BoundedQueue + in-flight credits)
//     [worker pool]            model.classify per trace, any order
//        |
//   reorder buffer             seq -> result, emitted strictly in order
//        |
//   poll() / drain()           consumer side; drain() waits everything out
//
// Thread-safety contract: any number of producer threads may call submit()
// concurrently; poll()/drain() belong to ONE consumer thread; stats() and
// request_stop() are safe from anywhere.  The wrapped model is shared
// read-only across workers (see the contract note in core/hierarchical.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <thread>
#include <vector>

#include "core/hierarchical.hpp"
#include "core/sequence.hpp"

namespace sidis::core {
class FusedDisassembler;
}
#include "runtime/bounded_queue.hpp"
#include "runtime/decoder.hpp"
#include "runtime/stats.hpp"
#include "sim/acq_config.hpp"
#include "sim/trace.hpp"

namespace sidis::runtime {

struct StreamingConfig {
  /// Worker threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Work-queue capacity; submit() blocks when this many traces await a
  /// worker.  Small on purpose -- the queue is a shock absorber, not a lake.
  std::size_t queue_capacity = 64;
  /// Cap on accepted-but-not-yet-classified traces (0 = queue_capacity +
  /// 2 x workers) -- queue backlog plus work in workers' hands.  Classified
  /// results waiting for the consumer live in the reorder buffer, which a
  /// consumer bounds by polling at least as often as it submits (the
  /// single-threaded submit/poll loop does exactly that); deliberately NOT
  /// part of this credit, or a producer thread that is also the consumer
  /// would deadlock itself at capacity.
  std::size_t max_in_flight = 0;
  /// When set, every submitted window must carry this acquisition stamp
  /// (TraceMeta::samples_per_cycle / adc_bits, written by the capture
  /// campaign) and the matching window length; any submit/enqueue overload
  /// throws std::invalid_argument otherwise, before a sequence number is
  /// reserved.  Guards a fleet against mixing corpora captured at different
  /// front-end configurations behind one model -- templates fitted on one
  /// grid silently misclassify windows from another.
  std::optional<sim::AcquisitionConfig> expected_acquisition;
};

/// One in-order result: `sequence` is the submit() ticket it answers.
struct StreamResult {
  std::uint64_t sequence = 0;
  core::Disassembly value;
  /// Stamp of the classification stage that produced this result (the stamp
  /// passed to swap_classifier/swap_model; 0 for the construction-time stage
  /// and unstamped swaps).  Pinned together with the stage function, so a
  /// result's stamp always identifies the exact model that classified it --
  /// never a concurrently published successor.
  std::uint64_t model_stamp = 0;
  /// Max-marginal sequence confidence when sequence decoding is enabled
  /// (SmoothedWindow::confidence); +inf otherwise, and for pass-through
  /// windows that carried no posterior.
  double sequence_confidence = std::numeric_limits<double>::infinity();
  /// True when the sequence decoder rewrote this window's class.
  bool smoothed = false;
};

class StreamingDisassembler {
 public:
  /// Classification stage, pluggable for tests (adversarial delays) and for
  /// alternative backends; the model overload wraps model.classify.
  using ClassifyFn = std::function<core::Disassembly(const sim::Trace&)>;
  /// Batched stage: classifies N windows in one call, returning exactly N
  /// results in input order (core::HierarchicalDisassembler::classify_batch
  /// amortizes workspace setup and per-trace normalization this way).
  using BatchClassifyFn =
      std::function<std::vector<core::Disassembly>(const sim::TraceSet&)>;

  /// Classification stage + its identity stamp, swapped and pinned as one
  /// unit (see swap_classifier).  `fn` is required; `batch`, when absent,
  /// falls back to looping `fn` per window.  Public so multi-tenant callers
  /// (FleetFrontend) can pin per-batch stages for many models on one engine.
  struct Stage {
    ClassifyFn fn;
    BatchClassifyFn batch;
    std::uint64_t stamp = 0;
  };
  /// Stages are immutable once published and shared between the publisher,
  /// the engine, and every in-flight job.
  using StageRef = std::shared_ptr<const Stage>;

  /// Builds a model-backed stage (classify + classify_batch closures).  The
  /// shared_ptr keeps the model alive as long as any job can still run it.
  static StageRef make_stage(
      std::shared_ptr<const core::HierarchicalDisassembler> model,
      std::uint64_t stamp = 0);

  /// Posterior-scoring stage: classify_scored / classify_batch_scored, so
  /// every result carries the per-class log-posterior a SequenceDecoder
  /// needs.  Drop-in for make_stage everywhere a StageRef is accepted.
  static StageRef make_scored_stage(
      std::shared_ptr<const core::HierarchicalDisassembler> model,
      std::uint64_t stamp = 0);

  /// Multimodal stage backed by a core::FusedDisassembler: each submitted
  /// trace is treated as a paired power+EM window (Trace::em_samples); a
  /// window without an EM half degrades to the power channel per the fusion
  /// contract.  Drop-in for make_stage -- the engine, FleetFrontend shards,
  /// and swap paths are modality-agnostic.
  static StageRef make_fused_stage(
      std::shared_ptr<const core::FusedDisassembler> model,
      std::uint64_t stamp = 0);
  /// Scored variant (fused per-class log-posterior kept on every result).
  static StageRef make_fused_scored_stage(
      std::shared_ptr<const core::FusedDisassembler> model,
      std::uint64_t stamp = 0);

  /// The model must outlive the engine and is shared read-only by all
  /// workers.  An already-stopped `stop` token starts the engine stopped.
  StreamingDisassembler(const core::HierarchicalDisassembler& model,
                        StreamingConfig config = {}, std::stop_token stop = {});
  StreamingDisassembler(ClassifyFn classify, StreamingConfig config = {},
                        std::stop_token stop = {});
  /// Stage-backed engine (make_stage / make_scored_stage result).  Throws
  /// std::invalid_argument on a null stage or one without a scalar entry.
  StreamingDisassembler(StageRef stage, StreamingConfig config = {},
                        std::stop_token stop = {});

  /// Stops accepting, lets workers finish the accepted backlog, joins.
  /// Undelivered results are discarded -- call drain() first when every
  /// submitted trace must come back.
  ~StreamingDisassembler();

  StreamingDisassembler(const StreamingDisassembler&) = delete;
  StreamingDisassembler& operator=(const StreamingDisassembler&) = delete;

  /// Hands one trace window to the pool.  Blocks while the engine is at
  /// capacity (backpressure).  Returns the trace's sequence number, or
  /// std::nullopt once the engine is stopped -- the trace was NOT accepted.
  std::optional<std::uint64_t> submit(sim::Trace trace);

  /// Hands a coalesced batch to the pool as ONE job: a single worker runs
  /// the whole batch through the stage's batched entry point (one
  /// feature-extraction + classify pass amortized over N windows), and the
  /// windows occupy sequences [ret, ret + n) in the ordinary in-order
  /// delivery stream -- poll()/drain() interleave batched and single
  /// submissions transparently.  `stage`, when non-null, overrides the
  /// engine's current stage for this batch only; this is how a multi-tenant
  /// frontend serves many models on one shared worker pool.  Blocks on the
  /// in-flight credit like submit(); a batch larger than the whole credit is
  /// admitted only once the engine is empty (it can never fit "partially").
  /// Throws std::invalid_argument on an empty batch.
  std::optional<std::uint64_t> submit_batch(sim::TraceSet traces,
                                            StageRef stage = nullptr);

  /// Non-blocking admission variant: refuses (nullopt) instead of waiting
  /// when the batch exceeds the available in-flight credit or the engine is
  /// stopped.  Note: with queue_capacity < max_in_flight the subsequent
  /// queue push can still block briefly; configure queue_capacity >=
  /// max_in_flight (the FleetFrontend shard configuration) for a hard
  /// non-blocking guarantee -- batches then always fit the queue, because
  /// queued jobs never hold more windows than the in-flight credit admitted.
  std::optional<std::uint64_t> try_submit_batch(sim::TraceSet traces,
                                                StageRef stage = nullptr);

  /// Turns on lattice smoothing: in-order results flow through a bounded-lag
  /// SequenceDecoder before poll()/drain() emit them, so each verdict is
  /// conditioned on its neighbours under the transition prior.  Results gain
  /// sequence_confidence / smoothed; windows without a posterior (a plain
  /// make_stage stage) pass through unsmoothed.  Adds up to `config.lag`
  /// windows of delivery latency by construction.  Must be called before the
  /// first submit (throws std::logic_error afterwards); the decoder is
  /// consumer-side state, exempt from swap_classifier.
  void enable_sequence_decoding(std::vector<std::size_t> classes,
                                std::shared_ptr<const core::TransitionPrior> prior,
                                SequenceDecoderConfig config = {});

  /// True when enable_sequence_decoding has installed a decoder.
  bool sequence_decoding() const;

  /// Next in-order result if it is ready; non-blocking.  Results complete
  /// out of order internally but are only ever emitted in submission order.
  /// With sequence decoding enabled, a result is emitted once the decoder
  /// commits it (at most `lag` windows after its successors arrive).
  std::optional<StreamResult> poll();

  /// Stops accepting new traces, waits for every *accepted* trace to be
  /// classified, and returns the not-yet-polled tail in submission order.
  /// Safe after cancellation: accepted work is never lost or duplicated.
  std::vector<StreamResult> drain();

  /// Cancellation: stop accepting new submissions and unblock any producer
  /// stuck in submit().  Traces already accepted still complete (drain()
  /// collects them).  Idempotent; also triggered by the stop_token.
  void request_stop();

  bool stopped() const;

  /// Atomically replaces the classification stage while the engine runs --
  /// how a monitor publishes a recalibrated template set without dropping a
  /// single window.  Workers pick up the new stage at their next job;
  /// classifications already in progress finish with the stage they started
  /// with, so every result comes from exactly one coherent model.  Safe from
  /// any thread; counted in RuntimeStats::model_swaps.
  ///
  /// `stamp` identifies the published stage (e.g. the registry artifact
  /// checksum) and is reported back on every result it classifies
  /// (StreamResult::model_stamp).  Function and stamp live in ONE shared
  /// stage record that workers pin as a unit -- reading them separately
  /// raced: a registry checksum snapshot taken after the stage pointer could
  /// describe a concurrently published successor model.
  void swap_classifier(ClassifyFn classify, std::uint64_t stamp = 0);
  /// Model overload: the new model must outlive the engine (or the next
  /// swap), like the constructor's.
  void swap_model(const core::HierarchicalDisassembler& model,
                  std::uint64_t stamp = 0);
  /// Shared-ownership overload: publishes classify AND classify_batch
  /// closures that co-own the model, so batched submissions keep their fast
  /// path across hot-swaps and the model lives exactly as long as some job
  /// can still pin its stage.  The RecalibrationScheduler publishes through
  /// this.
  void swap_model(std::shared_ptr<const core::HierarchicalDisassembler> model,
                  std::uint64_t stamp = 0);

  /// Drift-loop telemetry, recorded by the RecalibrationScheduler (or any
  /// external drift controller).  Safe from any thread.
  void record_drift_event();
  void record_recalibration(std::size_t traces_spent);

  /// Consistent snapshot of counters and latency histograms.
  RuntimeStats stats() const;

  std::size_t workers() const { return threads_.size(); }
  /// Accepted-but-not-yet-classified windows right now (in-flight credit in
  /// use).  A single-producer caller (FleetFrontend owns its shard engines
  /// exclusively) can treat `max_in_flight() - in_flight()` as guaranteed
  /// admission room.
  std::size_t in_flight() const;
  std::size_t max_in_flight() const { return config_.max_in_flight; }

 private:
  using Clock = std::chrono::steady_clock;
  /// One unit of worker work: a single window or a coalesced batch.  The
  /// batch spans sequences [sequence, sequence + traces.size()).
  struct Job {
    std::uint64_t sequence = 0;
    sim::TraceSet traces;
    StageRef stage;  ///< batch-pinned stage; null = engine stage at pickup
    Clock::time_point submitted_at;
  };
  struct Pending {
    core::Disassembly value;
    Clock::time_point submitted_at;
    std::uint64_t model_stamp = 0;
  };
  /// Delivery metadata travelling alongside a window inside the sequence
  /// decoder (the decoder only sees Disassembly).  Decoder emission order is
  /// push order, so a FIFO stays aligned with the lattice.
  struct DecodeMeta {
    std::uint64_t sequence = 0;
    std::uint64_t model_stamp = 0;
    Clock::time_point submitted_at;
  };

  void worker_loop();
  /// Shared admission path of submit/submit_batch/try_submit_batch.
  std::optional<std::uint64_t> enqueue(sim::TraceSet traces, StageRef stage,
                                       bool blocking, bool batched);
  /// Pops ready in-order results into `out`; caller holds mutex_.  With a
  /// decoder installed, feeds them through it and pops what it has decided.
  void collect_ready_locked(std::vector<StreamResult>& out);
  /// Moves every ready in-order result into the decoder; caller holds mutex_.
  void feed_decoder_locked();
  /// Converts the decoder's next emission + the aligned DecodeMeta into a
  /// StreamResult, recording latency and smoothing counters.
  StreamResult finish_decoded_locked(SmoothedWindow&& w);

  /// Shared with workers job-by-job: each pickup copies the pointer under
  /// mutex_, so a swap never frees a stage mid-classification and the
  /// (function, stamp) pair stays coherent.
  StageRef classify_;
  StreamingConfig config_;
  BoundedQueue<Job> queue_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;    ///< producers waiting for credit
  std::condition_variable results_cv_;  ///< drain() waiting for completions
  std::map<std::uint64_t, Pending> reorder_;
  std::uint64_t next_submit_ = 0;
  std::uint64_t next_emit_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::uint64_t drift_events_ = 0;
  std::uint64_t recalibrations_ = 0;
  std::uint64_t recal_traces_spent_ = 0;
  std::uint64_t rejected_ = 0;  ///< results with Verdict::kRejected
  std::uint64_t degraded_ = 0;  ///< results with Verdict::kDegraded
  std::uint64_t batches_submitted_ = 0;  ///< submit_batch calls accepted
  std::uint64_t batch_windows_ = 0;      ///< windows they carried
  /// Consumer-side sequence decoder (null = no smoothing).  Guarded by
  /// mutex_; only the single consumer (poll/drain) touches it.
  std::unique_ptr<SequenceDecoder> decoder_;
  std::deque<DecodeMeta> decode_meta_;
  std::uint64_t windows_decoded_ = 0;   ///< emissions that went through it
  std::uint64_t windows_smoothed_ = 0;  ///< of those, class rewritten
  LatencyHistogram windows_per_batch_;   ///< realized lanes per batched pass
  std::uint64_t batch_classify_nanos_ = 0;   ///< wall time in batched passes
  std::uint64_t scalar_classify_nanos_ = 0;  ///< wall time in scalar passes
  std::uint64_t batch_classified_windows_ = 0;
  std::uint64_t scalar_classified_windows_ = 0;
  std::uint64_t faulted_ = 0;   ///< submitted windows with fault_severity > 0
  double fault_severity_sum_ = 0.0;
  double max_fault_severity_ = 0.0;
  std::size_t in_flight_high_water_ = 0;
  bool accepting_ = true;
  LatencyHistogram queue_wait_;
  LatencyHistogram classify_hist_;
  LatencyHistogram end_to_end_;

  std::stop_callback<std::function<void()>> stop_callback_;
  std::vector<std::jthread> threads_;  ///< last member: joins before teardown
};

}  // namespace sidis::runtime

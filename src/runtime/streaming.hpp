// Parallel streaming disassembly engine -- the serving layer between
// `core::disassemble` and a live trace stream.
//
// The paper's real-time framing (Sec. 5.4) is a producer/consumer problem:
// per-instruction windows arrive at capture rate, classification costs a few
// hundred kernel correlations each, so the only way to keep up is to fan the
// windows out across cores.  The engine does exactly that while preserving
// the one property a disassembler cannot lose: *output order is submission
// order*, no matter how out-of-order the workers complete.
//
//   submit(trace) -> seq       bounded, blocking backpressure
//        |                     (BoundedQueue + in-flight credits)
//     [worker pool]            model.classify per trace, any order
//        |
//   reorder buffer             seq -> result, emitted strictly in order
//        |
//   poll() / drain()           consumer side; drain() waits everything out
//
// Thread-safety contract: any number of producer threads may call submit()
// concurrently; poll()/drain() belong to ONE consumer thread; stats() and
// request_stop() are safe from anywhere.  The wrapped model is shared
// read-only across workers (see the contract note in core/hierarchical.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <thread>
#include <vector>

#include "core/hierarchical.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/stats.hpp"
#include "sim/trace.hpp"

namespace sidis::runtime {

struct StreamingConfig {
  /// Worker threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Work-queue capacity; submit() blocks when this many traces await a
  /// worker.  Small on purpose -- the queue is a shock absorber, not a lake.
  std::size_t queue_capacity = 64;
  /// Cap on accepted-but-not-yet-classified traces (0 = queue_capacity +
  /// 2 x workers) -- queue backlog plus work in workers' hands.  Classified
  /// results waiting for the consumer live in the reorder buffer, which a
  /// consumer bounds by polling at least as often as it submits (the
  /// single-threaded submit/poll loop does exactly that); deliberately NOT
  /// part of this credit, or a producer thread that is also the consumer
  /// would deadlock itself at capacity.
  std::size_t max_in_flight = 0;
};

/// One in-order result: `sequence` is the submit() ticket it answers.
struct StreamResult {
  std::uint64_t sequence = 0;
  core::Disassembly value;
  /// Stamp of the classification stage that produced this result (the stamp
  /// passed to swap_classifier/swap_model; 0 for the construction-time stage
  /// and unstamped swaps).  Pinned together with the stage function, so a
  /// result's stamp always identifies the exact model that classified it --
  /// never a concurrently published successor.
  std::uint64_t model_stamp = 0;
};

class StreamingDisassembler {
 public:
  /// Classification stage, pluggable for tests (adversarial delays) and for
  /// alternative backends; the model overload wraps model.classify.
  using ClassifyFn = std::function<core::Disassembly(const sim::Trace&)>;

  /// The model must outlive the engine and is shared read-only by all
  /// workers.  An already-stopped `stop` token starts the engine stopped.
  StreamingDisassembler(const core::HierarchicalDisassembler& model,
                        StreamingConfig config = {}, std::stop_token stop = {});
  StreamingDisassembler(ClassifyFn classify, StreamingConfig config = {},
                        std::stop_token stop = {});

  /// Stops accepting, lets workers finish the accepted backlog, joins.
  /// Undelivered results are discarded -- call drain() first when every
  /// submitted trace must come back.
  ~StreamingDisassembler();

  StreamingDisassembler(const StreamingDisassembler&) = delete;
  StreamingDisassembler& operator=(const StreamingDisassembler&) = delete;

  /// Hands one trace window to the pool.  Blocks while the engine is at
  /// capacity (backpressure).  Returns the trace's sequence number, or
  /// std::nullopt once the engine is stopped -- the trace was NOT accepted.
  std::optional<std::uint64_t> submit(sim::Trace trace);

  /// Next in-order result if it is ready; non-blocking.  Results complete
  /// out of order internally but are only ever emitted in submission order.
  std::optional<StreamResult> poll();

  /// Stops accepting new traces, waits for every *accepted* trace to be
  /// classified, and returns the not-yet-polled tail in submission order.
  /// Safe after cancellation: accepted work is never lost or duplicated.
  std::vector<StreamResult> drain();

  /// Cancellation: stop accepting new submissions and unblock any producer
  /// stuck in submit().  Traces already accepted still complete (drain()
  /// collects them).  Idempotent; also triggered by the stop_token.
  void request_stop();

  bool stopped() const;

  /// Atomically replaces the classification stage while the engine runs --
  /// how a monitor publishes a recalibrated template set without dropping a
  /// single window.  Workers pick up the new stage at their next job;
  /// classifications already in progress finish with the stage they started
  /// with, so every result comes from exactly one coherent model.  Safe from
  /// any thread; counted in RuntimeStats::model_swaps.
  ///
  /// `stamp` identifies the published stage (e.g. the registry artifact
  /// checksum) and is reported back on every result it classifies
  /// (StreamResult::model_stamp).  Function and stamp live in ONE shared
  /// stage record that workers pin as a unit -- reading them separately
  /// raced: a registry checksum snapshot taken after the stage pointer could
  /// describe a concurrently published successor model.
  void swap_classifier(ClassifyFn classify, std::uint64_t stamp = 0);
  /// Model overload: the new model must outlive the engine (or the next
  /// swap), like the constructor's.
  void swap_model(const core::HierarchicalDisassembler& model,
                  std::uint64_t stamp = 0);

  /// Drift-loop telemetry, recorded by the RecalibrationScheduler (or any
  /// external drift controller).  Safe from any thread.
  void record_drift_event();
  void record_recalibration(std::size_t traces_spent);

  /// Consistent snapshot of counters and latency histograms.
  RuntimeStats stats() const;

  std::size_t workers() const { return threads_.size(); }

 private:
  using Clock = std::chrono::steady_clock;
  struct Job {
    std::uint64_t sequence = 0;
    sim::Trace trace;
    Clock::time_point submitted_at;
  };
  struct Pending {
    core::Disassembly value;
    Clock::time_point submitted_at;
    std::uint64_t model_stamp = 0;
  };
  /// Classification stage + its identity stamp, swapped and pinned as one
  /// unit (see swap_classifier).
  struct Stage {
    ClassifyFn fn;
    std::uint64_t stamp = 0;
  };

  void worker_loop();
  /// Pops ready in-order results into `out`; caller holds mutex_.
  void collect_ready_locked(std::vector<StreamResult>& out);

  /// Shared with workers job-by-job: each pickup copies the pointer under
  /// mutex_, so a swap never frees a stage mid-classification and the
  /// (function, stamp) pair stays coherent.
  std::shared_ptr<const Stage> classify_;
  StreamingConfig config_;
  BoundedQueue<Job> queue_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;    ///< producers waiting for credit
  std::condition_variable results_cv_;  ///< drain() waiting for completions
  std::map<std::uint64_t, Pending> reorder_;
  std::uint64_t next_submit_ = 0;
  std::uint64_t next_emit_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::uint64_t drift_events_ = 0;
  std::uint64_t recalibrations_ = 0;
  std::uint64_t recal_traces_spent_ = 0;
  std::uint64_t rejected_ = 0;  ///< results with Verdict::kRejected
  std::uint64_t degraded_ = 0;  ///< results with Verdict::kDegraded
  std::uint64_t faulted_ = 0;   ///< submitted windows with fault_severity > 0
  double fault_severity_sum_ = 0.0;
  double max_fault_severity_ = 0.0;
  std::size_t in_flight_high_water_ = 0;
  bool accepting_ = true;
  LatencyHistogram queue_wait_;
  LatencyHistogram classify_hist_;
  LatencyHistogram end_to_end_;

  std::stop_callback<std::function<void()>> stop_callback_;
  std::vector<std::jthread> threads_;  ///< last member: joins before teardown
};

}  // namespace sidis::runtime

#include "runtime/fleet.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace sidis::runtime {

std::string to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRejectNew: return "reject-new";
    case AdmissionPolicy::kShedOldest: return "shed-oldest";
  }
  return "unknown";
}

FleetFrontend::FleetFrontend(
    std::shared_ptr<const core::HierarchicalDisassembler> default_model,
    FleetConfig config, const ModelRegistry* registry)
    : config_(config), default_model_(std::move(default_model)) {
  if (default_model_ == nullptr) {
    throw std::invalid_argument("FleetFrontend: null default model");
  }
  default_stage_ = StreamingDisassembler::make_stage(default_model_, 0);
  if (registry != nullptr) view_ = std::make_unique<RegistryView>(*registry);
  init_shards();
}

FleetFrontend::FleetFrontend(StreamingDisassembler::StageRef default_stage,
                             FleetConfig config, const ModelRegistry* registry)
    : config_(config), default_stage_(std::move(default_stage)) {
  if (default_stage_ == nullptr || !default_stage_->fn) {
    throw std::invalid_argument("FleetFrontend: null default stage");
  }
  if (registry != nullptr) view_ = std::make_unique<RegistryView>(*registry);
  init_shards();
}

FleetFrontend::~FleetFrontend() = default;

void FleetFrontend::init_shards() {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.stream_credit == 0) config_.stream_credit = 1;
  if (config_.shard_depth == 0) {
    config_.shard_depth = std::max<std::size_t>(4 * config_.batch_max, 64);
  }
  // A batch must be able to fit the whole engine credit, or a full-width
  // batch could only ever be admitted against an empty engine.
  config_.shard_depth = std::max(config_.shard_depth, config_.batch_max);

  StreamingConfig sc;
  sc.workers = config_.workers_per_shard;
  // queue_capacity == max_in_flight makes try_submit_batch hard
  // non-blocking (see its doc) -- the dispatcher must never stall the
  // submit/poll path behind a worker.
  sc.queue_capacity = config_.shard_depth;
  sc.max_in_flight = config_.shard_depth;

  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<StreamingDisassembler>(default_stage_->fn, sc);
    shards_.push_back(std::move(shard));
  }
}

StreamingDisassembler::StageRef FleetFrontend::stage_for(const ResolvedModel& resolved,
                                                         bool scored) {
  std::lock_guard lock(stage_cache_mutex_);
  const auto key = std::make_tuple(resolved.name, resolved.version, scored);
  const auto it = stage_cache_.find(key);
  if (it != stage_cache_.end()) return it->second;
  // One StageRef per artifact fleet-wide: stage identity is what lets the
  // dispatcher coalesce windows of different streams into one batch.  The
  // scored twin is a distinct stage (decode streams batch with decode
  // streams of the same artifact, never with plain ones -- emissions must be
  // all-or-nothing per batch).
  auto stage =
      scored
          ? StreamingDisassembler::make_scored_stage(resolved.model, resolved.checksum)
          : StreamingDisassembler::make_stage(resolved.model, resolved.checksum);
  stage_cache_.emplace(key, stage);
  return stage;
}

StreamingDisassembler::StageRef FleetFrontend::default_scored_stage() {
  std::lock_guard lock(stage_cache_mutex_);
  if (default_scored_stage_ == nullptr) {
    default_scored_stage_ = StreamingDisassembler::make_scored_stage(default_model_, 0);
  }
  return default_scored_stage_;
}

FleetFrontend::StreamId FleetFrontend::open_stream(StreamOptions options) {
  StreamingDisassembler::StageRef stage;
  std::shared_ptr<const core::HierarchicalDisassembler> model;
  if (!options.model_name.empty()) {
    if (view_ == nullptr) {
      throw std::invalid_argument(
          "FleetFrontend: stream requests model '" + options.model_name +
          "' but the fleet has no registry");
    }
    const ResolvedModel resolved =
        view_->resolve(options.model_name, options.model_version);
    model = resolved.model;
    stage = stage_for(resolved, options.decode_sequence);
  } else if (options.decode_sequence) {
    if (default_model_ == nullptr) {
      throw std::invalid_argument(
          "FleetFrontend: decode_sequence requires a model-backed stream "
          "(the lattice needs the model's posterior support and emissions)");
    }
    stage = default_scored_stage();
    model = default_model_;
  } else {
    stage = default_stage_;
    model = default_model_;
  }

  std::unique_ptr<DriftMonitor> monitor;
  if (options.monitor_drift) {
    if (model == nullptr) {
      throw std::invalid_argument(
          "FleetFrontend: monitor_drift requires a model-backed stream "
          "(stage-backed fleets can only monitor registry-resolved streams)");
    }
    monitor = std::make_unique<DriftMonitor>(model, options.drift);
  }

  std::unique_ptr<SequenceDecoder> decoder;
  if (options.decode_sequence) {
    if (options.decode_prior == nullptr) {
      throw std::invalid_argument(
          "FleetFrontend: decode_sequence needs a transition prior");
    }
    decoder = std::make_unique<SequenceDecoder>(
        model->posterior_classes(), options.decode_prior, options.decode);
  }

  const StreamId id = next_stream_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_of(id);
  std::lock_guard lock(shard.mutex);
  StreamState state;
  state.stage = std::move(stage);
  state.monitor = std::move(monitor);
  state.decoder = std::move(decoder);
  shard.streams.emplace(id, std::move(state));
  ++shard.opened;
  return id;
}

AdmitResult FleetFrontend::submit(StreamId stream, sim::Trace trace) {
  Shard& shard = shard_of(stream);
  std::lock_guard lock(shard.mutex);
  pump_locked(shard);

  AdmitResult result;
  const auto it = shard.streams.find(stream);
  if (it == shard.streams.end() || it->second.closing) {
    result.status = AdmitStatus::kClosed;
    return result;
  }
  StreamState& s = it->second;

  AdmitStatus status = AdmitStatus::kAccepted;
  if (s.outstanding() >= config_.stream_credit) {
    if (config_.admission == AdmissionPolicy::kRejectNew) {
      ++s.rejected;
      ++shard.rejected;
      result.status = AdmitStatus::kRejected;
      return result;
    }
    // kShedOldest: reclaim the oldest window not yet inside the engine --
    // oldest pending first (never classified, cheapest loss), else oldest
    // ready (classified but undelivered).  Windows in the engine's hands
    // cannot be recalled; if everything is in flight, refuse after all.
    if (!s.pending.empty()) {
      s.pending.pop_front();
      --shard.pending_windows;
    } else if (!s.ready.empty()) {
      s.ready.pop_front();
    } else {
      ++s.rejected;
      ++shard.rejected;
      result.status = AdmitStatus::kRejected;
      return result;
    }
    ++s.shed;
    ++shard.shed;
    status = AdmitStatus::kAcceptedShedOldest;
  }

  PendingWindow window;
  window.stream_sequence = s.next_sequence++;
  window.trace = std::move(trace);
  window.admitted_at = Clock::now();
  result.status = status;
  result.stream_sequence = window.stream_sequence;
  s.pending.push_back(std::move(window));
  ++shard.pending_windows;
  ++s.admitted;
  ++shard.admitted;
  if (!s.queued_for_dispatch) {
    s.queued_for_dispatch = true;
    shard.dispatch_queue.push_back(stream);
  }
  dispatch_locked(shard);
  return result;
}

void FleetFrontend::dispatch_locked(Shard& shard) {
  for (;;) {
    const std::size_t in_flight = shard.engine->in_flight();
    const std::size_t room = shard.engine->max_in_flight() - in_flight;
    if (room == 0 || shard.dispatch_queue.empty()) return;
    // Adaptive coalescing: while every worker has queued work (the engine is
    // not starving), hold pending windows back until a full batch_max batch
    // fits -- dispatching dribbles now would forfeit the classify_batch
    // amortization for zero latency gain, since the windows would only queue
    // inside the engine instead.  The moment the engine runs low
    // (in_flight < workers) anything pending goes out immediately, so light
    // load keeps per-window latency and saturated load gets full batches.
    const bool starving = in_flight < shard.engine->workers();
    if (!starving && (shard.pending_windows < config_.batch_max ||
                      room < config_.batch_max)) {
      return;
    }
    const std::size_t cap = std::min(room, config_.batch_max);

    // One coalescing turn: round-robin across queued streams, only streams
    // sharing the first taken stream's stage -- a batch is classified by
    // exactly one model.  Every queued stream contributes one window before
    // any stream contributes a second (fairness), but once the queue is
    // exhausted the turn keeps cycling through streams that still have
    // pending windows (the carousel) until the batch is full -- a deep
    // backlog on few streams still fills batches, which is where the
    // classify_batch amortization comes from.  Wrong-stage streams are
    // deferred to the head of the queue so the next turn picks them up
    // first.
    sim::TraceSet batch;
    std::vector<Route> routes;
    StreamingDisassembler::StageRef stage;
    std::vector<StreamId> wrong_stage;
    std::deque<StreamId> carousel;
    while (batch.size() < cap) {
      StreamId id = 0;
      if (!shard.dispatch_queue.empty()) {
        id = shard.dispatch_queue.front();
        shard.dispatch_queue.pop_front();
      } else if (!carousel.empty()) {
        id = carousel.front();
        carousel.pop_front();
      } else {
        break;
      }
      const auto it = shard.streams.find(id);
      if (it == shard.streams.end()) continue;
      StreamState& s = it->second;
      if (s.pending.empty()) {
        s.queued_for_dispatch = false;
        continue;
      }
      if (stage == nullptr) stage = s.stage;
      if (s.stage != stage) {
        wrong_stage.push_back(id);
        continue;
      }
      PendingWindow window = std::move(s.pending.front());
      s.pending.pop_front();
      --shard.pending_windows;
      Route route;
      route.stream = id;
      route.stream_sequence = window.stream_sequence;
      route.admitted_at = window.admitted_at;
      if (s.monitor != nullptr) route.trace = window.trace;
      batch.push_back(std::move(window.trace));
      routes.push_back(std::move(route));
      ++s.dispatched;
      if (!s.pending.empty()) {
        carousel.push_back(id);
      } else {
        s.queued_for_dispatch = false;
      }
    }
    for (auto rit = wrong_stage.rbegin(); rit != wrong_stage.rend(); ++rit) {
      shard.dispatch_queue.push_front(*rit);
    }
    for (const StreamId id : carousel) shard.dispatch_queue.push_back(id);
    if (batch.empty()) return;

    const std::size_t n = batch.size();
    const auto seq = shard.engine->try_submit_batch(std::move(batch), stage);
    if (!seq.has_value()) {
      // Unreachable while the engine runs (room was checked under the shard
      // lock and the fleet is the engine's only producer); reachable only
      // through external cancellation of the shard engine.  Account the
      // windows as shed so delivered + shed == admitted still closes.
      for (const Route& route : routes) {
        const auto sit = shard.streams.find(route.stream);
        if (sit != shard.streams.end()) {
          --sit->second.dispatched;
          ++sit->second.shed;
        }
        ++shard.shed;
      }
      return;
    }
    // Engine sequences [*seq, *seq + n) belong to these routes, in order;
    // the engine emits in sequence order and the fleet is its only producer
    // and consumer, so appending keeps `routes` aligned with poll() order.
    (void)n;
    for (Route& route : routes) shard.routes.push_back(std::move(route));
  }
}

void FleetFrontend::append_decoded_locked(Shard& shard, StreamState& s,
                                          SmoothedWindow&& w) {
  DecodePending meta = s.decode_meta.front();
  s.decode_meta.pop_front();
  ReadyEntry entry;
  entry.result.stream_sequence = meta.stream_sequence;
  entry.result.value = std::move(w.value);
  entry.result.model_stamp = meta.model_stamp;
  entry.result.sequence_confidence = w.confidence;
  entry.result.smoothed = w.smoothed;
  entry.admitted_at = meta.admitted_at;
  ++shard.decoded;
  if (w.smoothed) ++shard.smoothed;
  s.ready.push_back(std::move(entry));
}

void FleetFrontend::drain_decoder_locked(Shard& shard, StreamState& s) {
  while (std::optional<SmoothedWindow> w = s.decoder->poll()) {
    append_decoded_locked(shard, s, std::move(*w));
  }
}

void FleetFrontend::pump_locked(Shard& shard) {
  while (auto polled = shard.engine->poll()) {
    Route route = std::move(shard.routes.front());
    shard.routes.pop_front();
    const auto it = shard.streams.find(route.stream);
    if (it == shard.streams.end()) continue;
    StreamState& s = it->second;
    ++s.arrived;
    if (s.monitor != nullptr && route.trace.has_value()) {
      // Per-stream isolation: this stream's monitor sees only this stream's
      // windows, in this stream's delivery order.  The monitor observes the
      // RAW classification, before any lattice smoothing -- drift statistics
      // must reflect what the model actually said.
      s.monitor->observe(*route.trace, polled->value);
      if (auto event = s.monitor->poll_event()) {
        s.events.push_back(*event);
        ++s.drift_events;
        ++shard.drift_events;
      }
    }
    if (s.decoder != nullptr) {
      // Per-stream lattice, fed in this stream's delivery order; whatever it
      // has committed moves on to the ready queue.
      s.decode_meta.push_back(DecodePending{route.stream_sequence,
                                            polled->model_stamp,
                                            route.admitted_at});
      s.decoder->push(std::move(polled->value));
      drain_decoder_locked(shard, s);
      continue;
    }
    ReadyEntry entry;
    entry.result.stream_sequence = route.stream_sequence;
    entry.result.value = std::move(polled->value);
    entry.result.model_stamp = polled->model_stamp;
    entry.admitted_at = route.admitted_at;
    s.ready.push_back(std::move(entry));
  }
}

std::optional<FleetResult> FleetFrontend::poll(StreamId stream) {
  Shard& shard = shard_of(stream);
  std::lock_guard lock(shard.mutex);
  pump_locked(shard);
  dispatch_locked(shard);
  const auto it = shard.streams.find(stream);
  if (it == shard.streams.end() || it->second.ready.empty()) return std::nullopt;
  StreamState& s = it->second;
  ReadyEntry entry = std::move(s.ready.front());
  s.ready.pop_front();
  ++s.delivered;
  ++shard.delivered;
  shard.admit_to_deliver.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           entry.admitted_at)
          .count()));
  return std::move(entry.result);
}

std::optional<DriftEvent> FleetFrontend::poll_drift_event(StreamId stream) {
  Shard& shard = shard_of(stream);
  std::lock_guard lock(shard.mutex);
  pump_locked(shard);
  const auto it = shard.streams.find(stream);
  if (it == shard.streams.end() || it->second.events.empty()) return std::nullopt;
  DriftEvent event = it->second.events.front();
  it->second.events.pop_front();
  return event;
}

std::vector<FleetResult> FleetFrontend::close_stream(StreamId stream) {
  Shard& shard = shard_of(stream);
  for (;;) {
    {
      std::lock_guard lock(shard.mutex);
      const auto it = shard.streams.find(stream);
      if (it == shard.streams.end()) return {};
      it->second.closing = true;
      pump_locked(shard);
      dispatch_locked(shard);
      StreamState& s = it->second;
      if (s.pending.empty() && s.dispatched == s.arrived) {
        if (s.decoder != nullptr) {
          // The stream is over: finish the lattice with the decoder's
          // offline tail pass so every admitted window is delivered.
          for (SmoothedWindow& w : s.decoder->flush()) {
            append_decoded_locked(shard, s, std::move(w));
          }
        }
        const auto now = Clock::now();
        std::vector<FleetResult> tail;
        tail.reserve(s.ready.size());
        for (ReadyEntry& entry : s.ready) {
          ++shard.delivered;
          shard.admit_to_deliver.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now - entry.admitted_at)
                  .count()));
          tail.push_back(std::move(entry.result));
        }
        ++shard.closed;
        shard.streams.erase(it);
        return tail;
      }
      // In-flight windows remain: release the lock so workers can classify
      // and retry (pump_locked above makes progress every turn).
    }
    std::this_thread::yield();
  }
}

StreamStats FleetFrontend::stream_stats(StreamId stream) const {
  const Shard& shard = shard_of(stream);
  std::lock_guard lock(shard.mutex);
  StreamStats out;
  const auto it = shard.streams.find(stream);
  if (it == shard.streams.end()) return out;
  const StreamState& s = it->second;
  out.windows_admitted = s.admitted;
  out.windows_delivered = s.delivered;
  out.windows_shed = s.shed;
  out.windows_rejected = s.rejected;
  out.drift_events = s.drift_events;
  out.outstanding = s.outstanding();
  return out;
}

FleetStats FleetFrontend::stats() const {
  FleetStats out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard lock(shard.mutex);
    out.streams_opened += shard.opened;
    out.streams_closed += shard.closed;
    out.streams_live += shard.streams.size();
    out.windows_admitted += shard.admitted;
    out.windows_delivered += shard.delivered;
    out.windows_shed += shard.shed;
    out.windows_rejected += shard.rejected;
    out.drift_events += shard.drift_events;
    out.admit_to_deliver.merge(shard.admit_to_deliver);
    out.runtime.merge(shard.engine->stats());
  }
  // The shard engines never shed (the frontend does, before they see the
  // window) -- mirror the frontend's admission outcomes into the merged
  // runtime record so one snapshot tells the whole story.  Sequence decoding
  // likewise happens frontend-side (per-stream lattices), so those counters
  // are mirrored too.
  out.runtime.windows_shed = out.windows_shed;
  out.runtime.windows_rejected = out.windows_rejected;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard lock(shard.mutex);
    out.runtime.windows_decoded += shard.decoded;
    out.runtime.windows_smoothed += shard.smoothed;
  }
  if (view_ != nullptr) out.models_cached = view_->models_cached();
  return out;
}

std::string FleetStats::report() const {
  std::ostringstream os;
  os << "fleet: streams open=" << streams_opened << " closed=" << streams_closed
     << " live=" << streams_live << '\n';
  os << "  windows: admitted=" << windows_admitted
     << " delivered=" << windows_delivered << " shed=" << windows_shed
     << " rejected=" << windows_rejected << '\n';
  os << "  drift events=" << drift_events << " models cached=" << models_cached
     << '\n';
  os << "  admit->deliver: " << admit_to_deliver.summary() << '\n';
  os << runtime.report();
  return os.str();
}

}  // namespace sidis::runtime

// Sharded read-through cache over the ModelRegistry -- the model-resolution
// half of the fleet frontend.
//
// A fleet opens thousands of streams, most of which reference the same
// handful of model bundles; deserializing a template archive per stream
// would dominate open_stream cost and waste memory on identical copies.
// The view resolves (name, version) to ONE shared in-memory model per
// artifact, loading each archive from disk at most once, and returns the
// artifact checksum alongside so the caller can stamp every result with the
// exact on-disk version that produced it.
//
// "Latest" pinning: version 0 resolves to the newest stored version at the
// moment of FIRST resolution and stays pinned there for the lifetime of the
// view.  A registry save performed later must not retroactively flip models
// under streams that asked for "latest" when they opened -- fleet model
// rollout is an explicit operation (open new streams, or hot-swap through
// the recalibration path), never a side effect of a writer racing a reader.
//
// Sharded by bundle-name hash so concurrent open_stream storms on different
// bundles do not serialize on one mutex.  All members are thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/registry.hpp"

namespace sidis::runtime {

/// One resolved model: the shared instance plus the registry identity it was
/// loaded from.  `checksum` doubles as the serving stamp
/// (StreamResult::model_stamp of every window it classifies).
struct ResolvedModel {
  std::shared_ptr<const core::HierarchicalDisassembler> model;
  std::string name;
  int version = 0;  ///< concrete stored version (resolved from 0 = latest)
  std::uint64_t checksum = 0;
};

class RegistryView {
 public:
  /// The registry must outlive the view.  `shards` bounds lock contention,
  /// not capacity (clamped to >= 1).
  explicit RegistryView(const ModelRegistry& registry, std::size_t shards = 8);

  RegistryView(const RegistryView&) = delete;
  RegistryView& operator=(const RegistryView&) = delete;

  /// Resolves `name` at `version` (0 = latest-at-first-resolve, see header
  /// comment), loading and caching the artifact on first use.  Throws like
  /// ModelRegistry::load on unknown/corrupt artifacts.
  ResolvedModel resolve(const std::string& name, int version = 0);

  /// Distinct artifacts currently cached across all shards.
  std::size_t models_cached() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::pair<std::string, int>, ResolvedModel> cache;
    std::map<std::string, int> pinned_latest;  ///< name -> version 0 resolved to
  };

  Shard& shard_for(const std::string& name);
  const Shard& shard_for(const std::string& name) const;

  const ModelRegistry& registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sidis::runtime

// Runtime telemetry for the streaming engine: counters, queue high-water
// marks, and per-stage latency histograms, all snapshot-able while the
// engine is live.  Sec. 5.4 of the paper frames real-time disassembly as a
// latency budget ("~0.25 ns per instruction on a 1 GHz 4-wide core"); the
// histogram is how a deployment checks where its budget actually goes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sidis::runtime {

/// Log2-bucketed latency histogram over nanoseconds.  Bucket b counts
/// samples in [2^b, 2^(b+1)) ns; bucket 0 also absorbs sub-nanosecond
/// samples.  Fixed bucket count keeps snapshots allocation-free and covers
/// ~1 ns .. ~1.2 s, beyond anything a per-trace stage can take.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 31;

  void record(std::uint64_t nanos) {
    std::size_t b = 0;
    while (b + 1 < kBuckets && nanos >= (std::uint64_t{2} << b)) ++b;
    ++buckets_[b];
    ++count_;
    total_nanos_ += nanos;
    if (nanos > max_nanos_) max_nanos_ = nanos;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    total_nanos_ += other.total_nanos_;
    if (other.max_nanos_ > max_nanos_) max_nanos_ = other.max_nanos_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_nanos() const { return max_nanos_; }
  double mean_nanos() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_nanos_) / static_cast<double>(count_);
  }

  /// Smallest bucket upper bound below which at least `q` (in [0,1]) of the
  /// recorded samples fall -- a conservative quantile estimate.
  std::uint64_t quantile_upper_nanos(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// One-line rendering, e.g. "n=1000 mean=1.2us p50<2us p99<8us max=7.4us".
  std::string summary() const;

  /// summary() for histograms recording plain counts instead of nanoseconds
  /// (e.g. windows per batch): same shape, unitless numbers.
  std::string summary_counts() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_nanos_ = 0;
  std::uint64_t max_nanos_ = 0;
};

/// Point-in-time snapshot of a StreamingDisassembler's counters.  Plain
/// values -- safe to copy around, print, or diff between two instants.
struct RuntimeStats {
  std::uint64_t traces_submitted = 0;  ///< accepted by submit()
  std::uint64_t traces_completed = 0;  ///< classified by a worker
  std::uint64_t traces_emitted = 0;    ///< handed to the consumer, in order
  std::uint64_t traces_failed = 0;     ///< classify threw; default result emitted
  /// Reject-option outcomes (core::Verdict of each classified window).  All
  /// zero until the wrapped model has calibrated reject gates.
  std::uint64_t traces_rejected = 0;   ///< class-level gate tripped
  std::uint64_t traces_degraded = 0;   ///< off-distribution / operand gate
  /// Fault-injection telemetry, from TraceMeta::fault_severity ground truth
  /// (robustness sweeps stream faulted corpora through the engine).
  std::uint64_t traces_faulted = 0;    ///< windows with fault_severity > 0
  double fault_severity_sum = 0.0;     ///< sum over faulted windows
  double max_fault_severity = 0.0;     ///< worst severity seen
  /// Classifier hot-swaps performed (swap_model/swap_classifier) -- e.g. a
  /// monitor publishing a recalibrated template set mid-stream.
  std::uint64_t model_swaps = 0;
  /// Drift/recalibration telemetry, recorded by the RecalibrationScheduler:
  /// drift events consumed, recalibrations actually performed (an event with
  /// an exhausted budget raises the former but not the latter), and labeled
  /// recalibration traces spent across all of them.
  std::uint64_t drift_events = 0;
  std::uint64_t recalibrations = 0;
  std::uint64_t recal_traces_spent = 0;
  /// Batched submissions (submit_batch): calls accepted and the windows
  /// they carried.  batch_windows / batches_submitted is the realized
  /// coalescing factor of a fleet shard.
  std::uint64_t batches_submitted = 0;
  std::uint64_t batch_windows = 0;
  /// Batch-amortization telemetry of the worker pool: how many windows each
  /// classification pass actually carried (the realized lane count of the
  /// SoA hot path -- one sample per worker pass, value = windows), and how
  /// classify wall-time splits between the lane-vectorized batch path and
  /// the scalar per-window path.  batch_classify_nanos /
  /// batch_classified_windows vs the scalar ratio is the in-situ
  /// amortization factor a deployment actually realizes.
  LatencyHistogram windows_per_batch;       ///< counts, not nanos
  std::uint64_t batch_classify_nanos = 0;   ///< wall time inside batch passes
  std::uint64_t scalar_classify_nanos = 0;  ///< wall time inside scalar passes
  std::uint64_t batch_classified_windows = 0;
  std::uint64_t scalar_classified_windows = 0;
  /// Sequence-decoding telemetry (enable_sequence_decoding / per-stream fleet
  /// decoders): windows emitted through a lattice decoder, and how many of
  /// them had their class rewritten by the transition prior.
  std::uint64_t windows_decoded = 0;
  std::uint64_t windows_smoothed = 0;
  /// Admission-control outcomes, filled by the multi-tenant frontend when it
  /// aggregates shard stats (a bare engine never sheds -- it blocks):
  /// windows shed after admission (kShedOldest reclaiming credit) and
  /// submissions refused outright (kRejectNew, or nothing sheddable).
  std::uint64_t windows_shed = 0;
  std::uint64_t windows_rejected = 0;
  std::size_t queue_depth_high_water = 0;     ///< work-queue backlog peak
  std::size_t in_flight_high_water = 0;       ///< accepted-not-yet-classified peak
  std::size_t workers = 0;
  LatencyHistogram queue_wait;   ///< submit -> worker pickup
  LatencyHistogram classify;     ///< feature extraction + hierarchy walk
  LatencyHistogram end_to_end;   ///< submit -> in-order emission

  /// Folds another snapshot into this one: counters add, histograms merge,
  /// high-water marks take the max, workers add.  How FleetFrontend
  /// aggregates its shard engines into one fleet-wide record.
  void merge(const RuntimeStats& other);

  /// Multi-line human-readable report.
  std::string report() const;
};

}  // namespace sidis::runtime

// Versioned on-disk model store -- trained disassemblers as deployable
// artifacts.
//
// The paper's workflow trains templates once on a profiling device and ships
// them to every monitor (Sec. 2).  core/serialize gives the byte format;
// the registry adds the operational half: named bundles, monotonically
// increasing versions, checksums so a truncated or bit-rotted artifact is
// rejected at load instead of silently misclassifying, and atomic
// publication (write-temp + rename) so a crashed writer never leaves a
// half-visible version.
//
// On-disk layout:
//
//   <root>/<name>/v000001.sidis
//   <root>/<name>/v000002.sidis
//
// Each artifact is a one-line header followed by the serialized model:
//
//   sidis-bundle 1 <name> <version> <payload-bytes> <fnv1a64-hex>\n
//   <payload = core::save_disassembler output>
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"

namespace sidis::runtime {

/// Metadata of one stored artifact (parsed from its header).
struct ArtifactInfo {
  std::string name;
  int version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 over the payload bytes
  std::filesystem::path path;
};

/// FNV-1a 64-bit over a byte string (exposed for tests).
std::uint64_t fnv1a64(const std::string& bytes);

class ModelRegistry {
 public:
  /// Opens (and creates, if needed) the registry root directory.
  explicit ModelRegistry(std::filesystem::path root);

  /// Stores a new version of `name` and returns its version number
  /// (1 + latest).  Name must be non-empty [A-Za-z0-9._-]+ (it becomes a
  /// directory).  Throws std::invalid_argument on a bad name and
  /// std::runtime_error on I/O failure.
  int save(const std::string& name, const core::HierarchicalDisassembler& model);

  /// Loads `name` at `version` (0 = latest).  Verifies header, payload size
  /// and checksum before deserializing; throws std::runtime_error on a
  /// missing, truncated, or corrupted artifact.
  core::HierarchicalDisassembler load(const std::string& name, int version = 0) const;

  /// Header metadata without deserializing the model (still checksums the
  /// payload, so it doubles as an integrity check).
  ArtifactInfo info(const std::string& name, int version = 0) const;

  /// Stored bundle names, sorted.
  std::vector<std::string> names() const;

  /// Versions available for `name`, ascending (empty when unknown).
  std::vector<int> versions(const std::string& name) const;

  /// Latest stored version of `name`, 0 when none.
  int latest_version(const std::string& name) const;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path artifact_path(const std::string& name, int version) const;

  std::filesystem::path root_;
};

}  // namespace sidis::runtime

#include "runtime/registry_view.hpp"

#include <functional>
#include <utility>

namespace sidis::runtime {

RegistryView::RegistryView(const ModelRegistry& registry, std::size_t shards)
    : registry_(registry) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

RegistryView::Shard& RegistryView::shard_for(const std::string& name) {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

const RegistryView::Shard& RegistryView::shard_for(const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

ResolvedModel RegistryView::resolve(const std::string& name, int version) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mutex);
  if (version == 0) {
    // Pin "latest" on first resolution; later saves do not retarget it.
    const auto pinned = shard.pinned_latest.find(name);
    if (pinned != shard.pinned_latest.end()) {
      version = pinned->second;
    } else {
      version = registry_.latest_version(name);
      if (version == 0) {
        throw std::runtime_error("RegistryView: no versions of bundle '" + name + "'");
      }
      shard.pinned_latest.emplace(name, version);
    }
  }
  const auto key = std::make_pair(name, version);
  const auto it = shard.cache.find(key);
  if (it != shard.cache.end()) return it->second;

  // info() checksums the payload before we pay for deserialization, and its
  // checksum is the stamp every stream serving this artifact reports.
  const ArtifactInfo info = registry_.info(name, version);
  ResolvedModel resolved;
  resolved.model = std::make_shared<const core::HierarchicalDisassembler>(
      registry_.load(name, version));
  resolved.name = name;
  resolved.version = version;
  resolved.checksum = info.checksum;
  shard.cache.emplace(key, resolved);
  return resolved;
}

std::size_t RegistryView::models_cached() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->cache.size();
  }
  return n;
}

}  // namespace sidis::runtime

// Online covariate-shift (drift) detection for a deployed monitor.
//
// The paper's CSA section and both follow-ups in PAPERS.md agree on the
// field failure mode: acquisition conditions drift -- supply, temperature,
// probe coupling, chip aging -- and templates trained under profiling
// conditions silently rot.  The streaming runtime can already *publish* a
// recalibrated model mid-stream (swap_model); this module supplies the
// missing trigger: a streaming statistic that says "the features no longer
// look like training" soon enough to spend the recalibration budget before
// accuracy craters, while holding a bounded false-alarm rate on stationary
// streams (raising it for nothing burns K labeled traces per event).
//
// Detector statistic.  Every observed window is projected into the model's
// monitor feature space (core::HierarchicalDisassembler::monitor_features,
// the post-pipeline vectors of its monitor level) and folded into per-feature
// EWMA mean/variance estimates initialized at the training moments persisted
// with the model (serialize v3).  Two complementary statistics compare the
// estimates against training:
//
//  * z_rms: root-mean-square over features of the EWMA-mean z-score.  An
//    EWMA with smoothing alpha over iid samples of variance s^2 has
//    stationary variance s^2 * alpha / (2 - alpha); dividing each feature's
//    mean displacement by that yields a calibrated per-feature z, so the
//    default threshold speaks sigma units regardless of feature scale.
//    Catches *mean shifts* (gain/offset/thermal drift residuals).
//  * mean symmetric KL: per-feature univariate-Gaussian symmetrized KL
//    divergence between the EWMA estimate and training, averaged over
//    features.  Catches *spread changes* (noise-floor growth, saturation)
//    that leave means in place.
//
// A third, model-relative trigger watches the reject-rate EWMA: calibrated
// reject gates (core::RejectConfig quantiles) fire on off-distribution
// inputs, so a climbing reject rate flags drift even in directions the
// moment statistics compress poorly.  Any trigger must stay raised for
// `consecutive` observations before an event fires (a single outlier window
// never raises), and `cooldown` observations must separate events.
//
// Threading contract: a DriftMonitor belongs to ONE thread -- feed it from
// the streaming engine's consumer loop in emission order.  Pure sequential
// arithmetic, no clocks, no RNG: a fixed observation sequence produces
// bit-identical scores and events at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/hierarchical.hpp"
#include "sim/trace.hpp"

namespace sidis::core {
class FusedDisassembler;
}

namespace sidis::runtime {

struct DriftConfig {
  /// EWMA smoothing for the per-feature moment estimates.  Smaller = longer
  /// memory = smaller stationary variance = finer drifts detectable, at the
  /// price of detection latency (the effective window is ~2/alpha).
  double alpha = 0.05;
  /// Observations before any event may fire; lets the EWMA variance
  /// estimates settle so the KL statistic starts calibrated.
  std::size_t warmup = 32;
  /// z_rms trigger threshold, in sigma units of the stationary EWMA-mean
  /// distribution (see header comment).
  double z_threshold = 3.5;
  /// Mean-symmetric-KL trigger threshold (nats).  0.5 corresponds to a
  /// ~1 sigma mean shift or a ~2x variance change on every feature at once.
  double kl_threshold = 0.5;
  /// Consecutive triggered observations required before an event fires.
  std::size_t consecutive = 4;
  /// Observations after an event (or rebase) before the next may fire.
  std::size_t cooldown = 64;
  /// EWMA smoothing of the reject-rate trend.
  double reject_alpha = 0.02;
  /// Reject-rate trigger threshold; >= 1.0 disables the trigger (a rate
  /// never exceeds 1).  Only meaningful when the model's reject gates are
  /// calibrated.
  double reject_rate_threshold = 1.0;
};

enum class DriftTrigger : std::uint8_t {
  kFeatureShift = 0,  ///< z_rms crossed z_threshold (mean displacement)
  kFeatureSpread = 1, ///< mean symmetric KL crossed kl_threshold
  kRejectRate = 2,    ///< reject-rate EWMA crossed its threshold
};

std::string to_string(DriftTrigger trigger);

/// One raised drift alarm.
struct DriftEvent {
  std::uint64_t ordinal = 0;      ///< 0-based index of this event
  std::uint64_t observation = 0;  ///< observations seen when it fired (1-based)
  DriftTrigger trigger = DriftTrigger::kFeatureShift;
  double z_rms = 0.0;             ///< statistic values at fire time
  double symmetric_kl = 0.0;
  double reject_rate = 0.0;
};

class DriftMonitor {
 public:
  /// The model supplies both the feature projection and the training
  /// moments it is compared against; the monitor shares ownership so a
  /// hot-swap elsewhere can never leave it dangling.  Throws
  /// std::invalid_argument when the model carries no training moments
  /// (pre-v3 archive, or every level trivial).
  explicit DriftMonitor(std::shared_ptr<const core::HierarchicalDisassembler> model,
                        DriftConfig config = {});

  /// Folds one classified window into the statistics: projects the trace
  /// through the model's monitor pipeline and updates the moment and
  /// reject-rate estimates.  Call from the consumer loop in emission order.
  void observe(const sim::Trace& trace, const core::Disassembly& result);

  /// Low-level entry point: folds an already-projected feature vector (the
  /// synthetic-stream tests drive this directly).  `rejected` feeds the
  /// reject-rate trend.  Throws std::invalid_argument on a dimension
  /// mismatch with the training moments.
  void observe_features(const linalg::Vector& features, bool rejected);

  /// Returns the pending event, if one fired since the last poll; at most
  /// one event is pending at a time (further triggers while un-polled are
  /// folded into the pending one's statistics being stale -- poll often).
  std::optional<DriftEvent> poll_event();

  /// Resets the streaming estimates back onto the model's training moments
  /// and restarts warmup/cooldown.  Call after a recalibrated model has been
  /// published so the monitor judges the *new* steady state.
  void rebase();

  /// Points the monitor at a (typically recalibrated) successor model and
  /// rebases.  Throws like the constructor.
  void rebind(std::shared_ptr<const core::HierarchicalDisassembler> model);

  // -- introspection (current statistic values) ------------------------------
  double z_rms() const { return z_rms_; }
  double symmetric_kl() const { return symmetric_kl_; }
  double reject_rate() const { return reject_rate_; }
  std::uint64_t observations() const { return observations_; }
  std::uint64_t events_raised() const { return events_raised_; }
  const DriftConfig& config() const { return config_; }
  const std::shared_ptr<const core::HierarchicalDisassembler>& model() const {
    return model_;
  }

 private:
  void recompute_scores();

  std::shared_ptr<const core::HierarchicalDisassembler> model_;
  DriftConfig config_;
  linalg::Vector train_mean_;
  linalg::Vector train_var_;
  linalg::Vector ewma_mean_;
  linalg::Vector ewma_var_;
  double z_rms_ = 0.0;
  double symmetric_kl_ = 0.0;
  double reject_rate_ = 0.0;
  std::uint64_t observations_ = 0;       ///< since construction
  std::uint64_t since_rebase_ = 0;       ///< warmup/cooldown clock
  std::size_t streak_ = 0;
  std::uint64_t events_raised_ = 0;
  std::optional<DriftEvent> pending_;
};

/// A DriftEvent attributed to one acquisition channel of a fused deployment.
struct ChannelDriftEvent {
  sim::Channel channel = sim::Channel::kPower;
  DriftEvent event;
};

/// Per-channel drift tracking for a multimodal (power+EM) deployment: one
/// DriftMonitor per channel model, each fed that channel's view of every
/// paired window.  The channels drift under *independent* covariate-shift
/// processes (power gain/thermal drift vs. EM probe misalignment), so a
/// shared statistic would smear an alarm across both and the scheduler could
/// not tell which channel to recalibrate.  Events carry the channel, so the
/// RecalibrationScheduler renorms/refits exactly the rotten model while the
/// other channel keeps serving.  Same single-thread contract as DriftMonitor.
class FusedDriftMonitor {
 public:
  /// Builds one monitor per channel of `fused` (the EM monitor only when the
  /// fused model carries an EM channel).  Throws like DriftMonitor when a
  /// channel model has no training moments.
  explicit FusedDriftMonitor(std::shared_ptr<const core::FusedDisassembler> fused,
                             DriftConfig config = {});

  /// Folds one classified paired window into both channels' statistics: the
  /// power monitor sees channel_view(trace, kPower), the EM monitor (when
  /// present, and the window carries an EM half) sees the kEm view.  The
  /// fused verdict feeds both reject-rate trends -- a fused rejection means
  /// the *deployment* refused the window, whichever channel caused it.
  void observe(const sim::Trace& trace, const core::Disassembly& result);

  /// Pending event from either channel, power channel polled first (its
  /// model is the primary operating curve the degradation gate pins).
  std::optional<ChannelDriftEvent> poll_event();

  /// Rebinds one channel's monitor onto a recalibrated successor and rebases
  /// it; the other channel's streak/cooldown state is untouched.
  void rebind_power(std::shared_ptr<const core::HierarchicalDisassembler> model);
  void rebind_em(std::shared_ptr<const core::HierarchicalDisassembler> model);

  DriftMonitor& power_monitor() { return power_; }
  const DriftMonitor& power_monitor() const { return power_; }
  /// Null when the fused model carries no EM channel.
  DriftMonitor* em_monitor() { return em_ ? em_.get() : nullptr; }
  const DriftMonitor* em_monitor() const { return em_ ? em_.get() : nullptr; }

 private:
  DriftMonitor power_;
  std::unique_ptr<DriftMonitor> em_;
};

}  // namespace sidis::runtime

// Bounded multi-producer / multi-consumer work queue with blocking
// backpressure -- the hand-off point of the streaming runtime (Sec. 5.4's
// real-time argument: the capture front-end must never be dropped on the
// floor, so a full queue *blocks* the producer instead of discarding).
//
// Header-only and dependency-free so that `sidis_core` can use the pool for
// campaign parallelism without a library cycle (runtime's compiled half
// depends on core, not the other way around).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace sidis::runtime {

/// Bounded FIFO.  All members are safe to call concurrently from any number
/// of producer and consumer threads.  Closing wakes every blocked thread:
/// producers fail fast, consumers drain the remaining items and then see
/// std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full.  Returns false (and drops the item)
  /// once the queue has been closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      high_water_ = std::max(high_water_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns std::nullopt only when the
  /// queue is closed *and* fully drained, so no accepted item is ever lost.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; std::nullopt when currently empty.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every blocked producer/consumer.
  /// Items already queued stay poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been -- the backpressure telemetry surfaced
  /// through RuntimeStats.
  std::size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace sidis::runtime

// Bounded-lag Viterbi smoothing over one stream's in-order delivery -- the
// runtime half of probabilistic sequence decoding.
//
// core::viterbi_decode needs the whole sequence before it can emit anything;
// a serving tier cannot wait for a stream to end.  The SequenceDecoder keeps
// a sliding lattice of the last `lag + 1` windows: every push() extends the
// Viterbi recursion one step (optionally beam-pruned), and once the lattice
// exceeds the lag the oldest window is *committed* -- its state taken from
// the backtrace of the current frontier argmax -- and emitted with a
// max-marginal sequence confidence.  After a commit the lattice is rebased by
// conditioning on the committed state, so consecutive emissions always form a
// connected path under the transition prior.
//
// Latency is bounded by construction (a window waits at most `lag` successor
// windows), and every commit on which the frontier paths already agree is
// flagged SmoothedWindow::converged: while all commits so far carry the flag,
// the emitted prefix is *exactly* what offline Viterbi would emit (after a
// forced commit the decoder solves the problem conditioned on that prefix,
// which is the right objective for a stream that must keep its word).  The
// decode-equivalence battery in sequence_test pins this, and flush() finishes
// any tail with a full offline pass.
//
// Windows without a posterior (plain classify() results, or windows outside
// the decoder's class support) flush the lattice and pass through unsmoothed,
// so a mixed stream degrades gracefully instead of faulting.
//
// Thread-safety: none.  One decoder belongs to one stream's single consumer
// (StreamingDisassembler::poll/drain, or a FleetFrontend shard under its
// lock), mirroring DriftMonitor's per-stream isolation.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/hierarchical.hpp"
#include "core/sequence.hpp"
#include "linalg/matrix.hpp"

namespace sidis::runtime {

struct SequenceDecoderConfig {
  /// Commit horizon: a window is decided after `lag` successors have been
  /// seen.  0 decodes greedily (commit on push, conditioned on the previous
  /// commit); a lag >= the stream length reproduces offline Viterbi exactly.
  std::size_t lag = 8;
  /// Beam width: predecessors considered per recursion step (0 = all states,
  /// exact).  Pruning bounds the per-window cost at beam * classes.
  std::size_t beam = 0;
  /// Weight on the transition prior (0 = per-window argmax of the posterior).
  double prior_weight = 1.0;
  /// kOk windows whose sequence confidence falls below this are downgraded
  /// to kDegraded -- the lattice's ambiguity feeds the existing reject
  /// vocabulary.  0 never fires (confidences are >= 0).
  double min_confidence = 0.0;
  /// kRejected windows whose sequence confidence reaches this are upgraded
  /// to kDegraded: the lattice is near-certain about a window the per-window
  /// gates threw away.  +inf (default) never repairs.
  double repair_confidence = std::numeric_limits<double>::infinity();
};

/// One smoothed emission of the decoder.
struct SmoothedWindow {
  core::Disassembly value;
  /// The per-window class before smoothing (== value.class_idx when the
  /// decoder agreed with the classifier).
  std::size_t raw_class = 0;
  /// True when the decoder rewrote the class.
  bool smoothed = false;
  /// True when every frontier path already passed through the committed
  /// state at commit time -- the decision is provably what offline Viterbi,
  /// conditioned on the previously emitted prefix, would pick no matter what
  /// arrives later (so an all-converged prefix equals the unconditioned
  /// offline decode).  Pass-throughs and flush() tails (which see the whole
  /// remaining stream) are always converged.
  bool converged = true;
  /// Max-marginal margin of the committed state at this position: best path
  /// score through it minus the best through any other state.  +inf for
  /// pass-throughs and single-class supports.
  double confidence = std::numeric_limits<double>::infinity();
};

class SequenceDecoder {
 public:
  /// `classes` is the ascending posterior support the emissions are indexed
  /// by (core::HierarchicalDisassembler::posterior_classes()); `prior` must
  /// cover every class in it.  Throws std::invalid_argument on an empty
  /// support, a null prior, or a support the prior does not cover.
  SequenceDecoder(std::vector<std::size_t> classes,
                  std::shared_ptr<const core::TransitionPrior> prior,
                  SequenceDecoderConfig config = {});

  /// Feeds the next in-order window.  Emissions become available on poll()
  /// once decided (a pass-through or a commit beyond the lag horizon).
  void push(core::Disassembly window);

  /// Next decided window, FIFO in push order; nullopt when everything is
  /// still inside the lag horizon.
  std::optional<SmoothedWindow> poll();

  /// Decides the remaining lattice with a full offline pass (stream end) and
  /// returns every not-yet-polled emission in order.  Resets the lattice; the
  /// decoder can be reused for a fresh stream afterwards.
  std::vector<SmoothedWindow> flush();

  /// Windows pushed but not yet emitted through poll().
  std::size_t pending() const { return lattice_.size() + out_.size(); }

  const std::vector<std::size_t>& classes() const { return classes_; }
  const SequenceDecoderConfig& config() const { return config_; }

  /// Windows whose class the decoder has rewritten so far.
  std::uint64_t smoothed_count() const { return smoothed_count_; }

 private:
  struct Node {
    core::Disassembly window;
    linalg::Vector emissions;  ///< log-posterior over classes_, support order
    linalg::Vector delta;      ///< Viterbi scores, max-normalized per step
    std::vector<std::size_t> backptr;  ///< empty at the lattice front
  };

  /// Extends the recursion: fills node.delta/backptr from `prev` (nullptr at
  /// the lattice front).
  void advance(Node& node, const Node* prev) const;
  /// Commits the front window off a full backtrace and rebases the rest of
  /// the lattice on the committed state.
  void commit_front();
  /// Builds the emission record for the front node given its committed
  /// state index and max-marginal confidence.
  SmoothedWindow emit(const Node& node, std::size_t state, double confidence,
                      bool converged);

  std::vector<std::size_t> classes_;
  SequenceDecoderConfig config_;
  linalg::Matrix log_trans_;  ///< prior_weight * log P(b|a) over the support
  std::deque<Node> lattice_;
  std::deque<SmoothedWindow> out_;
  /// State committed just before the lattice emptied (lag 0 commits every
  /// push), so the next window still chains from it.  Reset at stream breaks
  /// (flush, pass-through) -- a fresh stream starts unconditioned.
  std::optional<std::size_t> last_committed_;
  std::uint64_t smoothed_count_ = 0;
};

}  // namespace sidis::runtime

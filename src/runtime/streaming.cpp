#include "runtime/streaming.hpp"

#include <stdexcept>

#include "core/fusion.hpp"
#include "runtime/thread_pool.hpp"

namespace sidis::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_nanos(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

StreamingDisassembler::StageRef StreamingDisassembler::make_stage(
    std::shared_ptr<const core::HierarchicalDisassembler> model,
    std::uint64_t stamp) {
  if (model == nullptr) {
    throw std::invalid_argument("StreamingDisassembler::make_stage: null model");
  }
  // Both closures co-own the model: a stage outlives every job pinned to it.
  return std::make_shared<const Stage>(Stage{
      [model](const sim::Trace& t) { return model->classify(t); },
      [model](const sim::TraceSet& ts) { return model->classify_batch(ts); },
      stamp});
}

StreamingDisassembler::StageRef StreamingDisassembler::make_scored_stage(
    std::shared_ptr<const core::HierarchicalDisassembler> model,
    std::uint64_t stamp) {
  if (model == nullptr) {
    throw std::invalid_argument(
        "StreamingDisassembler::make_scored_stage: null model");
  }
  return std::make_shared<const Stage>(Stage{
      [model](const sim::Trace& t) { return model->classify_scored(t); },
      [model](const sim::TraceSet& ts) { return model->classify_batch_scored(ts); },
      stamp});
}

StreamingDisassembler::StageRef StreamingDisassembler::make_fused_stage(
    std::shared_ptr<const core::FusedDisassembler> model, std::uint64_t stamp) {
  if (model == nullptr) {
    throw std::invalid_argument(
        "StreamingDisassembler::make_fused_stage: null model");
  }
  return std::make_shared<const Stage>(Stage{
      [model](const sim::Trace& t) { return model->classify(t); },
      [model](const sim::TraceSet& ts) { return model->classify_batch(ts); },
      stamp});
}

StreamingDisassembler::StageRef StreamingDisassembler::make_fused_scored_stage(
    std::shared_ptr<const core::FusedDisassembler> model, std::uint64_t stamp) {
  if (model == nullptr) {
    throw std::invalid_argument(
        "StreamingDisassembler::make_fused_scored_stage: null model");
  }
  return std::make_shared<const Stage>(Stage{
      [model](const sim::Trace& t) { return model->classify_scored(t); },
      [model](const sim::TraceSet& ts) { return model->classify_batch_scored(ts); },
      stamp});
}

StreamingDisassembler::StreamingDisassembler(
    const core::HierarchicalDisassembler& model, StreamingConfig config,
    std::stop_token stop)
    : StreamingDisassembler(
          [&model](const sim::Trace& t) { return model.classify(t); }, config,
          std::move(stop)) {
  // Upgrade the delegate-installed stage with the model's batched entry
  // point; no job can have pinned the plain stage yet (nothing submitted).
  classify_ = std::make_shared<const Stage>(Stage{
      [&model](const sim::Trace& t) { return model.classify(t); },
      [&model](const sim::TraceSet& ts) { return model.classify_batch(ts); }, 0});
}

StreamingDisassembler::StreamingDisassembler(ClassifyFn classify,
                                             StreamingConfig config,
                                             std::stop_token stop)
    : classify_(std::make_shared<const Stage>(Stage{std::move(classify), nullptr, 0})),
      config_(config),
      queue_(config.queue_capacity),
      stop_callback_(std::move(stop), std::function<void()>([this] { request_stop(); })) {
  if (config_.workers == 0) config_.workers = default_workers();
  if (config_.max_in_flight == 0) {
    config_.max_in_flight = config_.queue_capacity + 2 * config_.workers;
  }
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

StreamingDisassembler::StreamingDisassembler(StageRef stage, StreamingConfig config,
                                             std::stop_token stop)
    // Validate before delegating: a throw after the worker threads exist
    // would tear down jthreads blocked on a never-closed queue.
    : StreamingDisassembler(
          [&stage]() -> ClassifyFn {
            if (stage == nullptr || !stage->fn) {
              throw std::invalid_argument(
                  "StreamingDisassembler: null or scalar-less stage");
            }
            return stage->fn;
          }(),
          config, std::move(stop)) {
  // Install the full stage (batch entry + stamp); nothing submitted yet, so
  // no job can have pinned the delegate-installed plain stage.
  classify_ = std::move(stage);
}

StreamingDisassembler::~StreamingDisassembler() {
  request_stop();
  queue_.close();  // backlog stays poppable; workers exit once it is dry
  for (std::jthread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void StreamingDisassembler::worker_loop() {
  while (std::optional<Job> job = queue_.pop()) {
    const Clock::time_point picked_up = Clock::now();
    // Pin the classification stage for this job: the job's own pinned stage
    // when it carries one (a multi-tenant batch), else the engine's current
    // stage.  A concurrent swap_classifier() publishes a new stage without
    // pulling the pinned one out from under us, and the stamp travels inside
    // the same pinned record, so the result is always attributed to the
    // stage that actually produced it (reading a registry checksum in a
    // second critical section could name a stage published in between).
    StageRef stage = job->stage;
    if (stage == nullptr) {
      std::lock_guard lock(mutex_);
      stage = classify_;
    }
    const std::size_t n = job->traces.size();
    // A serving layer must not lose a worker (drain() would hang); on any
    // throw, emit deterministic default results and count the failures.
    std::vector<core::Disassembly> results;
    std::vector<unsigned char> window_failed(n, 0);
    std::uint64_t failures = 0;
    const bool used_batch = n > 1 && stage->batch != nullptr;
    if (used_batch) {
      try {
        results = (stage->batch)(job->traces);
        if (results.size() != n) throw std::runtime_error("batch size mismatch");
      } catch (...) {
        results.assign(n, core::Disassembly{});
        window_failed.assign(n, 1);
        failures = n;
      }
    } else {
      results.reserve(n);
      for (const sim::Trace& t : job->traces) {
        try {
          results.push_back((stage->fn)(t));
        } catch (...) {
          results.push_back(core::Disassembly{});
          window_failed[results.size() - 1] = 1;
          ++failures;
        }
      }
    }
    const Clock::time_point done = Clock::now();
    // Batch cost is amortized: each window is charged 1/n of the pass, so
    // the classify histogram reports effective per-window service time and
    // single vs batched paths share one perf record.
    const std::uint64_t pass_nanos = elapsed_nanos(picked_up, done);
    const std::uint64_t per_window = pass_nanos / static_cast<std::uint64_t>(n);
    const std::uint64_t waited = elapsed_nanos(job->submitted_at, picked_up);
    {
      std::lock_guard lock(mutex_);
      // Amortization telemetry: realized lane count of this pass and the
      // batch-vs-scalar wall-time split.
      if (used_batch) {
        windows_per_batch_.record(n);
        batch_classify_nanos_ += pass_nanos;
        batch_classified_windows_ += n;
      } else {
        scalar_classify_nanos_ += pass_nanos;
        scalar_classified_windows_ += n;
      }
      for (std::size_t i = 0; i < n; ++i) {
        queue_wait_.record(waited);
        classify_hist_.record(per_window);
        if (window_failed[i] == 0) {
          if (results[i].verdict == core::Verdict::kRejected) ++rejected_;
          if (results[i].verdict == core::Verdict::kDegraded) ++degraded_;
        }
        const double fault_severity = job->traces[i].meta.fault_severity;
        if (fault_severity > 0.0) {
          ++faulted_;
          fault_severity_sum_ += fault_severity;
          max_fault_severity_ = std::max(max_fault_severity_, fault_severity);
        }
        reorder_.emplace(
            job->sequence + i,
            Pending{std::move(results[i]), job->submitted_at, stage->stamp});
      }
      completed_ += n;
      failed_ += failures;
    }
    results_cv_.notify_all();
    space_cv_.notify_all();  // classification frees in-flight credit
  }
}

std::optional<std::uint64_t> StreamingDisassembler::enqueue(sim::TraceSet traces,
                                                            StageRef stage,
                                                            bool blocking,
                                                            bool batched) {
  if (traces.empty()) {
    throw std::invalid_argument("StreamingDisassembler: empty batch");
  }
  if (config_.expected_acquisition) {
    const sim::AcquisitionConfig& acq = *config_.expected_acquisition;
    const std::size_t window = acq.window_samples();
    for (const sim::Trace& t : traces) {
      if (t.meta.samples_per_cycle != acq.samples_per_cycle ||
          t.meta.adc_bits != acq.adc_bits || t.samples.size() != window) {
        throw std::invalid_argument(
            "StreamingDisassembler: trace acquisition stamp does not match "
            "expected_acquisition (rate/resolution/window)");
      }
    }
  }
  const std::uint64_t n = traces.size();
  Job job;
  {
    std::unique_lock lock(mutex_);
    // A batch must fit the in-flight credit whole; one wider than the whole
    // credit is admitted only against an empty engine (it could never fit).
    const auto admissible = [&] {
      const std::uint64_t used = next_submit_ - completed_;
      return used + n <= config_.max_in_flight || used == 0;
    };
    if (blocking) {
      space_cv_.wait(lock, [&] { return !accepting_ || admissible(); });
      if (!accepting_) return std::nullopt;
    } else if (!accepting_ || !admissible()) {
      return std::nullopt;
    }
    job.sequence = next_submit_;
    next_submit_ += n;
    if (batched) {
      ++batches_submitted_;
      batch_windows_ += n;
    }
    const std::size_t in_flight = static_cast<std::size_t>(next_submit_ - completed_);
    in_flight_high_water_ = std::max(in_flight_high_water_, in_flight);
  }
  job.traces = std::move(traces);
  job.stage = std::move(stage);
  job.submitted_at = Clock::now();
  const std::uint64_t seq = job.sequence;
  // The queue is only closed after drain()/destruction has already observed
  // accepting_ == false and waited the backlog out, so this push succeeds for
  // every reserved sequence number (no gaps in the reorder stream).
  queue_.push(std::move(job));
  return seq;
}

std::optional<std::uint64_t> StreamingDisassembler::submit(sim::Trace trace) {
  sim::TraceSet one;
  one.push_back(std::move(trace));
  return enqueue(std::move(one), nullptr, /*blocking=*/true, /*batched=*/false);
}

std::optional<std::uint64_t> StreamingDisassembler::submit_batch(sim::TraceSet traces,
                                                                 StageRef stage) {
  return enqueue(std::move(traces), std::move(stage), /*blocking=*/true,
                 /*batched=*/true);
}

std::optional<std::uint64_t> StreamingDisassembler::try_submit_batch(
    sim::TraceSet traces, StageRef stage) {
  return enqueue(std::move(traces), std::move(stage), /*blocking=*/false,
                 /*batched=*/true);
}

void StreamingDisassembler::feed_decoder_locked() {
  for (auto it = reorder_.find(next_emit_); it != reorder_.end();
       it = reorder_.find(next_emit_)) {
    decode_meta_.push_back(
        DecodeMeta{next_emit_, it->second.model_stamp, it->second.submitted_at});
    decoder_->push(std::move(it->second.value));
    reorder_.erase(it);
    ++next_emit_;
  }
}

StreamResult StreamingDisassembler::finish_decoded_locked(SmoothedWindow&& w) {
  DecodeMeta meta = decode_meta_.front();
  decode_meta_.pop_front();
  end_to_end_.record(elapsed_nanos(meta.submitted_at, Clock::now()));
  ++windows_decoded_;
  if (w.smoothed) ++windows_smoothed_;
  StreamResult r;
  r.sequence = meta.sequence;
  r.value = std::move(w.value);
  r.model_stamp = meta.model_stamp;
  r.sequence_confidence = w.confidence;
  r.smoothed = w.smoothed;
  return r;
}

void StreamingDisassembler::collect_ready_locked(std::vector<StreamResult>& out) {
  if (decoder_ != nullptr) {
    feed_decoder_locked();
    while (std::optional<SmoothedWindow> w = decoder_->poll()) {
      out.push_back(finish_decoded_locked(std::move(*w)));
    }
    return;
  }
  const Clock::time_point now = Clock::now();
  for (auto it = reorder_.find(next_emit_); it != reorder_.end();
       it = reorder_.find(next_emit_)) {
    end_to_end_.record(elapsed_nanos(it->second.submitted_at, now));
    out.push_back(
        StreamResult{next_emit_, std::move(it->second.value), it->second.model_stamp});
    reorder_.erase(it);
    ++next_emit_;
  }
}

std::optional<StreamResult> StreamingDisassembler::poll() {
  std::optional<StreamResult> out;
  {
    std::lock_guard lock(mutex_);
    if (decoder_ != nullptr) {
      feed_decoder_locked();
      std::optional<SmoothedWindow> w = decoder_->poll();
      if (!w.has_value()) return std::nullopt;
      return finish_decoded_locked(std::move(*w));
    }
    const auto it = reorder_.find(next_emit_);
    if (it == reorder_.end()) return std::nullopt;
    end_to_end_.record(elapsed_nanos(it->second.submitted_at, Clock::now()));
    out.emplace(
        StreamResult{next_emit_, std::move(it->second.value), it->second.model_stamp});
    reorder_.erase(it);
    ++next_emit_;
  }
  return out;
}

std::vector<StreamResult> StreamingDisassembler::drain() {
  request_stop();
  std::vector<StreamResult> out;
  {
    std::unique_lock lock(mutex_);
    while (next_emit_ < next_submit_) {
      collect_ready_locked(out);
      if (next_emit_ >= next_submit_) break;
      results_cv_.wait(lock, [&] { return reorder_.count(next_emit_) != 0; });
    }
    if (decoder_ != nullptr) {
      // Everything accepted has been fed; the stream is over, so finish the
      // lattice with the decoder's offline tail pass.
      feed_decoder_locked();
      for (SmoothedWindow& w : decoder_->flush()) {
        out.push_back(finish_decoded_locked(std::move(w)));
      }
    }
  }
  queue_.close();  // backlog is empty by now; lets the workers exit
  return out;
}

void StreamingDisassembler::enable_sequence_decoding(
    std::vector<std::size_t> classes,
    std::shared_ptr<const core::TransitionPrior> prior,
    SequenceDecoderConfig config) {
  std::lock_guard lock(mutex_);
  if (next_submit_ != 0) {
    throw std::logic_error(
        "enable_sequence_decoding: engine already has accepted windows");
  }
  decoder_ = std::make_unique<SequenceDecoder>(std::move(classes),
                                               std::move(prior), config);
}

bool StreamingDisassembler::sequence_decoding() const {
  std::lock_guard lock(mutex_);
  return decoder_ != nullptr;
}

void StreamingDisassembler::swap_classifier(ClassifyFn classify, std::uint64_t stamp) {
  auto stage = std::make_shared<const Stage>(Stage{std::move(classify), nullptr, stamp});
  {
    std::lock_guard lock(mutex_);
    classify_ = std::move(stage);
    ++model_swaps_;
  }
}

void StreamingDisassembler::swap_model(const core::HierarchicalDisassembler& model,
                                       std::uint64_t stamp) {
  auto stage = std::make_shared<const Stage>(Stage{
      [&model](const sim::Trace& t) { return model.classify(t); },
      [&model](const sim::TraceSet& ts) { return model.classify_batch(ts); }, stamp});
  {
    std::lock_guard lock(mutex_);
    classify_ = std::move(stage);
    ++model_swaps_;
  }
}

void StreamingDisassembler::swap_model(
    std::shared_ptr<const core::HierarchicalDisassembler> model,
    std::uint64_t stamp) {
  auto stage = make_stage(std::move(model), stamp);
  {
    std::lock_guard lock(mutex_);
    classify_ = std::move(stage);
    ++model_swaps_;
  }
}

void StreamingDisassembler::record_drift_event() {
  std::lock_guard lock(mutex_);
  ++drift_events_;
}

void StreamingDisassembler::record_recalibration(std::size_t traces_spent) {
  std::lock_guard lock(mutex_);
  ++recalibrations_;
  recal_traces_spent_ += traces_spent;
}

void StreamingDisassembler::request_stop() {
  {
    std::lock_guard lock(mutex_);
    accepting_ = false;
  }
  space_cv_.notify_all();
}

bool StreamingDisassembler::stopped() const {
  std::lock_guard lock(mutex_);
  return !accepting_;
}

std::size_t StreamingDisassembler::in_flight() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(next_submit_ - completed_);
}

RuntimeStats StreamingDisassembler::stats() const {
  RuntimeStats s;
  std::lock_guard lock(mutex_);
  s.traces_submitted = next_submit_;
  s.traces_completed = completed_;
  s.traces_emitted = next_emit_;
  s.traces_failed = failed_;
  s.model_swaps = model_swaps_;
  s.drift_events = drift_events_;
  s.recalibrations = recalibrations_;
  s.recal_traces_spent = recal_traces_spent_;
  s.traces_rejected = rejected_;
  s.traces_degraded = degraded_;
  s.batches_submitted = batches_submitted_;
  s.batch_windows = batch_windows_;
  s.windows_decoded = windows_decoded_;
  s.windows_smoothed = windows_smoothed_;
  s.windows_per_batch = windows_per_batch_;
  s.batch_classify_nanos = batch_classify_nanos_;
  s.scalar_classify_nanos = scalar_classify_nanos_;
  s.batch_classified_windows = batch_classified_windows_;
  s.scalar_classified_windows = scalar_classified_windows_;
  s.traces_faulted = faulted_;
  s.fault_severity_sum = fault_severity_sum_;
  s.max_fault_severity = max_fault_severity_;
  s.queue_depth_high_water = queue_.high_water();
  s.in_flight_high_water = in_flight_high_water_;
  s.workers = threads_.size();
  s.queue_wait = queue_wait_;
  s.classify = classify_hist_;
  s.end_to_end = end_to_end_;
  return s;
}

}  // namespace sidis::runtime

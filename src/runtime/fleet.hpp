// Fleet-scale multi-tenant serving frontend: many logical device streams
// multiplexed onto a few shared StreamingDisassembler worker shards.
//
// The paper watches ONE device; the production problem is a fleet.  A
// thousand monitored devices each emit a few windows per second -- far too
// little to justify a dedicated engine (and its worker threads) per device,
// far too much aggregate for one serial consumer.  The frontend gives every
// device a cheap logical stream handle and shares the expensive part (worker
// threads, feature-extraction passes, model instances) across all of them:
//
//   open_stream(opts) -> StreamId            per-stream model + drift monitor
//        |
//   submit(stream, window)                   admission control (credit,
//        |                                   shed-oldest / reject-new)
//   [per-shard pending queues]
//        |
//   shard scheduler                          coalesces windows of many
//        |                                   streams with the SAME model
//   StreamingDisassembler::submit_batch      into one batched classify pass
//        |
//   route table -> per-stream ready queues   per-stream in-order delivery
//        |
//   poll(stream) / close_stream(stream)
//
// Routing and shards.  Streams are assigned round-robin to `shards`
// StreamingDisassembler engines (stream id modulo shard count); each shard
// owns its engine exclusively (the shard lock serializes submits and polls,
// satisfying the engine's single-consumer contract) while the engine's own
// worker pool provides the parallelism.  All shard state -- per-stream
// queues, the route table mapping engine sequences back to streams, the
// dispatch round-robin -- lives under one mutex per shard, so streams on
// different shards never contend.
//
// Batching.  The dispatcher drains pending windows round-robin across the
// shard's streams -- every queued stream contributes one window before any
// stream contributes a second (fairness) -- packing up to batch_max windows
// that share a model stage into one submit_batch call; when fewer streams
// are queued than the batch has room, the round-robin keeps cycling so deep
// per-stream backlogs still fill batches.
// Streams serving different models are never mixed into one batch -- a batch
// is classified by exactly one model -- but they interleave batch-by-batch
// on the same shard.  Batch grouping depends on arrival timing and is NOT
// deterministic; per-window results are, because classify_batch is
// bit-identical to per-window classify for any grouping (the fleet_test
// battery pins this across 1/2/8 workers).
//
// Admission control.  Each stream holds at most `stream_credit` undelivered
// windows (pending + in flight + ready).  Over-credit submissions either
// shed the oldest reclaimable window (kShedOldest: oldest pending, else
// oldest ready; windows already inside the engine cannot be reclaimed) or
// are refused (kRejectNew).  Shedding is per-stream: one device flooding its
// credit never steals another stream's capacity, because shard engine depth
// is only consumed by dispatch, which is fair.  Counts surface per stream
// (StreamStats), per fleet (FleetStats), and mirrored into
// RuntimeStats::windows_shed / windows_rejected.
//
// Drift isolation.  A stream opened with monitor_drift gets its OWN
// DriftMonitor bound to its own model; observations are fed in delivery
// order during result pump-back, so one drifting device raises its own
// events (poll_drift_event) and never contaminates a neighbor's statistics.
//
// Thread-safety contract: every public method is safe from any thread; the
// shard mutex serializes internally.  Calls for ONE stream should come from
// one thread at a time (submit/submit races on a single stream would make
// its admission order, and hence its sequence numbers, unspecified --
// nothing breaks, but per-stream FIFO only means what the caller's own
// ordering means).  close_stream blocks until the stream's in-flight windows
// complete; it must not be called under a lock the classify path needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/drift.hpp"
#include "runtime/registry_view.hpp"
#include "runtime/streaming.hpp"

namespace sidis::runtime {

/// What to do with a submission that would exceed the stream's credit.
enum class AdmissionPolicy : std::uint8_t {
  kRejectNew = 0,   ///< refuse the new window; the backlog is preserved
  kShedOldest = 1,  ///< shed the oldest reclaimable window to admit the new
};

std::string to_string(AdmissionPolicy policy);

struct FleetConfig {
  /// Worker shards (independent engines); streams spread round-robin.
  std::size_t shards = 2;
  /// Worker threads per shard engine.
  std::size_t workers_per_shard = 2;
  /// Max windows coalesced into one submit_batch call.
  std::size_t batch_max = 16;
  /// Per-stream cap on admitted-but-undelivered windows (pending + in
  /// flight + ready).
  std::size_t stream_credit = 32;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  /// Shard engine in-flight credit (0 = max(4 * batch_max, 64)).  The engine
  /// queue capacity is set equal, which makes try_submit_batch hard
  /// non-blocking (see StreamingDisassembler::try_submit_batch).
  std::size_t shard_depth = 0;
};

/// How open_stream resolves the stream's model.
struct StreamOptions {
  /// Registry bundle to serve ("" = the fleet's default model).  Requires
  /// the fleet to have been built with a registry.
  std::string model_name;
  /// Bundle version (0 = latest at first resolution, see RegistryView).
  int model_version = 0;
  /// Arm a per-stream DriftMonitor (needs a model with training moments).
  bool monitor_drift = false;
  DriftConfig drift;
  /// Route this stream's results through a per-stream SequenceDecoder fed in
  /// delivery order (the same isolation as the drift monitor: one device's
  /// lattice never sees a neighbor's windows).  The stream is served by the
  /// posterior-scoring stage of its model, so every window carries the
  /// emissions the lattice needs; results gain sequence_confidence/smoothed.
  /// Requires a model-backed stream and a non-null decode_prior covering the
  /// model's posterior support (else open_stream throws).
  bool decode_sequence = false;
  SequenceDecoderConfig decode;
  std::shared_ptr<const core::TransitionPrior> decode_prior;
};

enum class AdmitStatus : std::uint8_t {
  kAccepted = 0,          ///< admitted within credit
  kAcceptedShedOldest = 1,///< admitted; the stream's oldest window was shed
  kRejected = 2,          ///< refused (kRejectNew, or nothing reclaimable)
  kClosed = 3,            ///< unknown or closing stream
};

/// Outcome of one submit(): status plus the admitted window's per-stream
/// sequence number (valid only when accepted()).
struct AdmitResult {
  AdmitStatus status = AdmitStatus::kRejected;
  std::uint64_t stream_sequence = 0;

  bool accepted() const {
    return status == AdmitStatus::kAccepted ||
           status == AdmitStatus::kAcceptedShedOldest;
  }
};

/// One in-order result of one stream.  stream_sequence is the submit()
/// ticket; gaps mark shed windows (delivery order is still strictly
/// ascending per stream).
struct FleetResult {
  std::uint64_t stream_sequence = 0;
  core::Disassembly value;
  std::uint64_t model_stamp = 0;  ///< registry checksum of the serving model
  /// Max-marginal sequence confidence for decode_sequence streams; +inf
  /// otherwise (see StreamResult::sequence_confidence).
  double sequence_confidence = std::numeric_limits<double>::infinity();
  /// True when the stream's sequence decoder rewrote this window's class.
  bool smoothed = false;
};

/// Telemetry of one live stream.
struct StreamStats {
  std::uint64_t windows_admitted = 0;
  std::uint64_t windows_delivered = 0;
  std::uint64_t windows_shed = 0;
  std::uint64_t windows_rejected = 0;
  std::uint64_t drift_events = 0;
  std::uint64_t outstanding = 0;  ///< admitted - delivered - shed
};

/// Fleet-wide snapshot: frontend counters plus the merged shard engines.
struct FleetStats {
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t streams_live = 0;
  std::uint64_t windows_admitted = 0;
  std::uint64_t windows_delivered = 0;
  std::uint64_t windows_shed = 0;
  std::uint64_t windows_rejected = 0;
  std::uint64_t drift_events = 0;
  std::size_t models_cached = 0;  ///< distinct artifacts in the registry view
  /// Merged shard-engine stats; windows_shed / windows_rejected above are
  /// mirrored into the corresponding RuntimeStats fields.
  RuntimeStats runtime;
  /// submit() admission -> poll() delivery, per window.
  LatencyHistogram admit_to_deliver;

  std::string report() const;
};

class FleetFrontend {
 public:
  using StreamId = std::uint64_t;

  /// Model-backed fleet: `default_model` serves streams opened without a
  /// model_name.  `registry`, when non-null, must outlive the frontend and
  /// enables per-stream model resolution by name/version.
  FleetFrontend(std::shared_ptr<const core::HierarchicalDisassembler> default_model,
                FleetConfig config = {}, const ModelRegistry* registry = nullptr);
  /// Stage-backed fleet (tests, alternative backends): streams opened
  /// without a model_name run `default_stage`; monitor_drift requires a
  /// model-backed stream, so it only works with a registry here.
  FleetFrontend(StreamingDisassembler::StageRef default_stage,
                FleetConfig config = {}, const ModelRegistry* registry = nullptr);

  /// Stops the shard engines; undelivered results of still-open streams are
  /// discarded (close_stream first when every window must come back).
  ~FleetFrontend();

  FleetFrontend(const FleetFrontend&) = delete;
  FleetFrontend& operator=(const FleetFrontend&) = delete;

  /// Opens a logical device stream and returns its handle.  Cheap: no
  /// threads are created; a registry-resolved model is loaded at most once
  /// fleet-wide.  Throws std::invalid_argument on unresolvable options and
  /// like DriftMonitor's constructor when monitor_drift is set on a model
  /// without training moments.
  StreamId open_stream(StreamOptions options = {});

  /// Admission-controlled, non-blocking submit of one window.  Never waits:
  /// over-credit submissions shed or reject per the configured policy.
  AdmitResult submit(StreamId stream, sim::Trace trace);

  /// Next in-order result of `stream`, if ready; non-blocking.  Also pumps
  /// completed shard results and dispatches pending windows, so a
  /// submit/poll loop makes progress without a dedicated scheduler thread.
  std::optional<FleetResult> poll(StreamId stream);

  /// Pending drift event of `stream`, if its monitor raised one (FIFO; at
  /// most one per DriftMonitor cooldown by construction).
  std::optional<DriftEvent> poll_drift_event(StreamId stream);

  /// Graceful close: stops admitting, waits for the stream's in-flight
  /// windows to classify, and returns every undelivered result in order.
  /// Idempotent (an unknown/closed stream returns empty).  Blocks.
  std::vector<FleetResult> close_stream(StreamId stream);

  /// Telemetry of one stream (zeros for unknown streams).
  StreamStats stream_stats(StreamId stream) const;

  /// Fleet-wide snapshot (merges every shard engine; see FleetStats).
  FleetStats stats() const;

  const FleetConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Admitted window awaiting dispatch.
  struct PendingWindow {
    std::uint64_t stream_sequence = 0;
    sim::Trace trace;
    Clock::time_point admitted_at;
  };
  /// Classified window awaiting delivery.
  struct ReadyEntry {
    FleetResult result;
    Clock::time_point admitted_at;
  };
  /// Maps one dispatched engine sequence back to its stream.  Routes are
  /// consumed strictly in engine-sequence order (the shard lock makes the
  /// fleet the engine's only producer, so engine sequences are contiguous).
  struct Route {
    StreamId stream = 0;
    std::uint64_t stream_sequence = 0;
    Clock::time_point admitted_at;
    /// Kept only for monitored streams (the monitor needs the raw window).
    std::optional<sim::Trace> trace;
  };
  /// Delivery metadata for a window inside a stream's sequence decoder
  /// (emission order is push order, so a FIFO stays aligned).
  struct DecodePending {
    std::uint64_t stream_sequence = 0;
    std::uint64_t model_stamp = 0;
    Clock::time_point admitted_at;
  };
  struct StreamState {
    StreamingDisassembler::StageRef stage;  ///< always non-null
    std::unique_ptr<DriftMonitor> monitor;
    /// Per-stream lattice smoother (decode_sequence streams only), fed in
    /// delivery order between the drift monitor and the ready queue.
    std::unique_ptr<SequenceDecoder> decoder;
    std::deque<DecodePending> decode_meta;
    std::deque<PendingWindow> pending;
    std::deque<ReadyEntry> ready;
    std::deque<DriftEvent> events;
    std::uint64_t next_sequence = 0;
    std::uint64_t admitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t drift_events = 0;
    std::uint64_t dispatched = 0;  ///< handed to the engine
    std::uint64_t arrived = 0;     ///< pumped back from the engine
    bool queued_for_dispatch = false;
    bool closing = false;

    std::uint64_t outstanding() const { return admitted - delivered - shed; }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unique_ptr<StreamingDisassembler> engine;
    std::map<StreamId, StreamState> streams;
    std::deque<Route> routes;             ///< engine-sequence order
    std::deque<StreamId> dispatch_queue;  ///< streams with pending windows
    std::size_t pending_windows = 0;      ///< total windows awaiting dispatch
    // Shard-lifetime aggregates (survive stream close).
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t admitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t drift_events = 0;
    std::uint64_t decoded = 0;   ///< windows emitted through stream decoders
    std::uint64_t smoothed = 0;  ///< of those, class rewritten
    LatencyHistogram admit_to_deliver;
  };

  void init_shards();
  Shard& shard_of(StreamId stream) { return *shards_[stream % shards_.size()]; }
  const Shard& shard_of(StreamId stream) const {
    return *shards_[stream % shards_.size()];
  }
  /// Drains completed engine results into per-stream ready queues, feeding
  /// drift monitors along the way.  Caller holds the shard mutex.
  void pump_locked(Shard& shard);
  /// Coalesces pending windows into model-homogeneous batches while the
  /// engine has credit.  Caller holds the shard mutex.
  void dispatch_locked(Shard& shard);
  /// Converts the decoder's next emission + the aligned DecodePending into a
  /// ReadyEntry on the stream's queue.  Caller holds the shard mutex.
  void append_decoded_locked(Shard& shard, StreamState& s, SmoothedWindow&& w);
  /// Drains everything the stream's decoder has decided.  Caller holds the
  /// shard mutex.
  void drain_decoder_locked(Shard& shard, StreamState& s);
  /// Per-(bundle, version, scored) stage cache so streams serving the same
  /// artifact share one StageRef -- stage identity is what lets the
  /// dispatcher batch them together.  `scored` selects the posterior-scoring
  /// entry points (decode_sequence streams).
  StreamingDisassembler::StageRef stage_for(const ResolvedModel& resolved,
                                            bool scored);
  /// Scored twin of the fleet's default stage, built lazily (model-backed
  /// fleets only).
  StreamingDisassembler::StageRef default_scored_stage();

  FleetConfig config_;
  std::shared_ptr<const core::HierarchicalDisassembler> default_model_;
  StreamingDisassembler::StageRef default_stage_;
  std::unique_ptr<RegistryView> view_;  ///< null without a registry
  std::mutex stage_cache_mutex_;
  std::map<std::tuple<std::string, int, bool>, StreamingDisassembler::StageRef>
      stage_cache_;
  StreamingDisassembler::StageRef default_scored_stage_;  ///< lazy, under cache mutex
  std::atomic<StreamId> next_stream_id_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sidis::runtime

#include "runtime/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace sidis::runtime {

namespace {

/// Renders nanoseconds with an adaptive unit ("742ns", "1.8us", "3.1ms").
std::string human_nanos(double nanos) {
  char buf[32];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", nanos / 1e3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", nanos / 1e9);
  }
  return buf;
}

}  // namespace

std::uint64_t LatencyHistogram::quantile_upper_nanos(double q) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) return std::uint64_t{2} << b;  // bucket upper bound
  }
  return max_nanos_;
}

std::string LatencyHistogram::summary() const {
  if (count_ == 0) return "n=0";
  std::string out = "n=" + std::to_string(count_);
  out += " mean=" + human_nanos(mean_nanos());
  out += " p50<" + human_nanos(static_cast<double>(quantile_upper_nanos(0.50)));
  out += " p99<" + human_nanos(static_cast<double>(quantile_upper_nanos(0.99)));
  out += " max=" + human_nanos(static_cast<double>(max_nanos_));
  return out;
}

std::string LatencyHistogram::summary_counts() const {
  if (count_ == 0) return "n=0";
  char buf[32];
  std::string out = "n=" + std::to_string(count_);
  std::snprintf(buf, sizeof buf, " mean=%.1f", mean_nanos());
  out += buf;
  out += " p50<" + std::to_string(quantile_upper_nanos(0.50));
  out += " p99<" + std::to_string(quantile_upper_nanos(0.99));
  out += " max=" + std::to_string(max_nanos_);
  return out;
}

void RuntimeStats::merge(const RuntimeStats& other) {
  traces_submitted += other.traces_submitted;
  traces_completed += other.traces_completed;
  traces_emitted += other.traces_emitted;
  traces_failed += other.traces_failed;
  traces_rejected += other.traces_rejected;
  traces_degraded += other.traces_degraded;
  traces_faulted += other.traces_faulted;
  fault_severity_sum += other.fault_severity_sum;
  max_fault_severity = std::max(max_fault_severity, other.max_fault_severity);
  model_swaps += other.model_swaps;
  drift_events += other.drift_events;
  recalibrations += other.recalibrations;
  recal_traces_spent += other.recal_traces_spent;
  batches_submitted += other.batches_submitted;
  batch_windows += other.batch_windows;
  windows_per_batch.merge(other.windows_per_batch);
  batch_classify_nanos += other.batch_classify_nanos;
  scalar_classify_nanos += other.scalar_classify_nanos;
  batch_classified_windows += other.batch_classified_windows;
  scalar_classified_windows += other.scalar_classified_windows;
  windows_decoded += other.windows_decoded;
  windows_smoothed += other.windows_smoothed;
  windows_shed += other.windows_shed;
  windows_rejected += other.windows_rejected;
  queue_depth_high_water = std::max(queue_depth_high_water, other.queue_depth_high_water);
  in_flight_high_water = std::max(in_flight_high_water, other.in_flight_high_water);
  workers += other.workers;
  queue_wait.merge(other.queue_wait);
  classify.merge(other.classify);
  end_to_end.merge(other.end_to_end);
}

std::string RuntimeStats::report() const {
  std::string out;
  out += "runtime: workers=" + std::to_string(workers);
  out += " submitted=" + std::to_string(traces_submitted);
  out += " completed=" + std::to_string(traces_completed);
  out += " emitted=" + std::to_string(traces_emitted);
  if (traces_failed != 0) out += " FAILED=" + std::to_string(traces_failed);
  out += "\n";
  if (traces_rejected != 0 || traces_degraded != 0) {
    out += "  verdicts: rejected=" + std::to_string(traces_rejected) +
           ", degraded=" + std::to_string(traces_degraded) + "\n";
  }
  if (traces_faulted != 0) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "  faulted: %llu windows, mean severity %.2f, max %.2f\n",
                  static_cast<unsigned long long>(traces_faulted),
                  fault_severity_sum / static_cast<double>(traces_faulted),
                  max_fault_severity);
    out += buf;
  }
  if (batches_submitted != 0) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "  batches: %llu carrying %llu windows (%.1f/batch)\n",
                  static_cast<unsigned long long>(batches_submitted),
                  static_cast<unsigned long long>(batch_windows),
                  static_cast<double>(batch_windows) /
                      static_cast<double>(batches_submitted));
    out += buf;
  }
  if (batch_classified_windows != 0 || scalar_classified_windows != 0) {
    char buf[160];
    const auto per_window = [](std::uint64_t nanos, std::uint64_t windows) {
      return windows == 0 ? std::string("-")
                          : human_nanos(static_cast<double>(nanos) /
                                        static_cast<double>(windows));
    };
    std::snprintf(buf, sizeof buf,
                  "  classify split: batch %llu windows @ %s/win, "
                  "scalar %llu windows @ %s/win\n",
                  static_cast<unsigned long long>(batch_classified_windows),
                  per_window(batch_classify_nanos, batch_classified_windows).c_str(),
                  static_cast<unsigned long long>(scalar_classified_windows),
                  per_window(scalar_classify_nanos, scalar_classified_windows).c_str());
    out += buf;
    out += "  windows/batch: " + windows_per_batch.summary_counts() + "\n";
  }
  if (windows_decoded != 0) {
    out += "  sequence decode: " + std::to_string(windows_decoded) +
           " windows, smoothed=" + std::to_string(windows_smoothed) + "\n";
  }
  if (windows_shed != 0 || windows_rejected != 0) {
    out += "  admission: shed=" + std::to_string(windows_shed) +
           ", rejected=" + std::to_string(windows_rejected) + "\n";
  }
  if (model_swaps != 0) {
    out += "  model swaps: " + std::to_string(model_swaps) + "\n";
  }
  if (drift_events != 0 || recalibrations != 0) {
    out += "  drift: events=" + std::to_string(drift_events) +
           ", recalibrations=" + std::to_string(recalibrations) +
           ", recal traces spent=" + std::to_string(recal_traces_spent) + "\n";
  }
  out += "  queue high-water: " + std::to_string(queue_depth_high_water) +
         ", in-flight high-water: " + std::to_string(in_flight_high_water) + "\n";
  out += "  queue wait:  " + queue_wait.summary() + "\n";
  out += "  classify:    " + classify.summary() + "\n";
  out += "  end-to-end:  " + end_to_end.summary() + "\n";
  return out;
}

}  // namespace sidis::runtime

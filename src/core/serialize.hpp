// Template persistence (the paper's workflow stores templates generated on
// the training device and ships them to the monitor).
//
// A plain-text, versioned, whitespace-delimited format keeps the archive
// auditable and diff-able; numbers round-trip exactly via hex-float
// rendering.  Serialization covers the QDA-based disassembler stack -- the
// paper's best classifier and the repository default.  SVM/kNN models store
// training data wholesale and are intentionally not persisted; retrain them
// from the profiling corpus instead.
#pragma once

#include <iosfwd>

#include "core/fusion.hpp"
#include "core/hierarchical.hpp"
#include "features/pipeline.hpp"
#include "ml/discriminant.hpp"

namespace sidis::core {

// -- primitive codecs (exposed for tests) -----------------------------------
void write_matrix(std::ostream& os, const linalg::Matrix& m);
linalg::Matrix read_matrix(std::istream& is);
void write_vector(std::ostream& os, const linalg::Vector& v);
linalg::Vector read_vector(std::istream& is);

/// Serializes a fitted feature pipeline (selected points, scalers, PCA).
void save_pipeline(std::ostream& os, const features::FeaturePipeline& pipeline);
features::FeaturePipeline load_pipeline(std::istream& is);

/// Serializes a fitted QDA model (per-class Gaussians + priors).
void save_qda(std::ostream& os, const ml::Qda& qda);
ml::Qda load_qda(std::istream& is);

/// Serializes a trained hierarchical disassembler whose levels all use QDA.
/// Throws std::invalid_argument when a level holds a different classifier.
void save_disassembler(std::ostream& os, const HierarchicalDisassembler& model);
/// Loads a single-channel archive.  Throws std::runtime_error when the
/// archive holds a fused model (use load_fused_disassembler).
HierarchicalDisassembler load_disassembler(std::istream& is);

/// Serializes a fused power+EM model (v5): the per-level fusion selections,
/// both channel models (each with its own pipelines and gates), and the
/// joint feature heads when trained.  Same QDA-only restriction as
/// save_disassembler.
void save_fused_disassembler(std::ostream& os, const FusedDisassembler& model);
/// Loads any archive as a fused model: v5 fused archives restore the full
/// fusion state; plain archives (v5 "plain" or any pre-v5 version) load as
/// a power-only fusion -- score mode, weights (1, 0), no EM channel -- so a
/// fused serving tier consumes legacy single-channel templates unchanged.
FusedDisassembler load_fused_disassembler(std::istream& is);

}  // namespace sidis::core

#include "core/sequence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "avr/grouping.hpp"
#include "avr/isa.hpp"

namespace sidis::core {

linalg::Vector log_softmax(const linalg::Vector& s) {
  linalg::Vector out(s.size());
  if (s.empty()) return out;
  double m = s[0];
  for (double v : s) m = std::max(m, v);
  double sum = 0.0;
  for (double v : s) sum += std::exp(v - m);
  const double lse = m + std::log(sum);
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = s[i] - lse;
  return out;
}

BigramPrior::BigramPrior(std::size_t num_classes, double smoothing)
    : counts_(num_classes, num_classes, smoothing), smoothing_(smoothing) {
  if (num_classes == 0) throw std::invalid_argument("BigramPrior: no classes");
  if (!(smoothing > 0.0)) throw std::invalid_argument("BigramPrior: smoothing must be > 0");
}

void BigramPrior::add_program(const avr::Program& program) {
  std::optional<std::size_t> prev;
  for (const avr::Instruction& in : program) {
    const auto cls = avr::class_of(in);
    if (!cls || *cls >= num_classes()) {
      prev.reset();  // unprofiled instruction breaks the chain
      continue;
    }
    if (prev) add_transition(*prev, *cls);
    prev = cls;
  }
}

void BigramPrior::add_transition(std::size_t from, std::size_t to) {
  counts_.at(from, to) += 1.0;
}

double BigramPrior::log_prob(std::size_t from, std::size_t to) const {
  double row = 0.0;
  for (std::size_t c = 0; c < counts_.cols(); ++c) row += counts_(from, c);
  return std::log(counts_.at(from, to) / row);
}

double BigramPrior::observed(std::size_t from, std::size_t to) const {
  return counts_.at(from, to) - smoothing_;
}

double BigramPrior::row_observed(std::size_t from) const {
  double total = 0.0;
  for (std::size_t c = 0; c < counts_.cols(); ++c) {
    total += counts_.at(from, c) - smoothing_;
  }
  return total;
}

namespace {

using avr::Mnemonic;

/// SREG flags a mnemonic writes, as a bitmask over avr::SregBit.  This is a
/// class-level summary: BSET/BCLR carry their flag in an operand, so they
/// conservatively count as writing any flag.
std::uint8_t flags_written(Mnemonic m) {
  constexpr std::uint8_t kArith =  // C Z N V S H
      (1u << avr::kFlagC) | (1u << avr::kFlagZ) | (1u << avr::kFlagN) |
      (1u << avr::kFlagV) | (1u << avr::kFlagS) | (1u << avr::kFlagH);
  constexpr std::uint8_t kShift =  // C Z N V S
      (1u << avr::kFlagC) | (1u << avr::kFlagZ) | (1u << avr::kFlagN) |
      (1u << avr::kFlagV) | (1u << avr::kFlagS);
  constexpr std::uint8_t kLogic =  // Z N V S
      (1u << avr::kFlagZ) | (1u << avr::kFlagN) | (1u << avr::kFlagV) |
      (1u << avr::kFlagS);
  switch (m) {
    case Mnemonic::kAdd: case Mnemonic::kAdc: case Mnemonic::kSub:
    case Mnemonic::kSbc: case Mnemonic::kSubi: case Mnemonic::kSbci:
    case Mnemonic::kCp: case Mnemonic::kCpc: case Mnemonic::kCpi:
    case Mnemonic::kNeg:
      return kArith;
    case Mnemonic::kLsl: case Mnemonic::kRol:
      return kArith;  // shift-through-add forms also touch H
    case Mnemonic::kAdiw: case Mnemonic::kSbiw:
    case Mnemonic::kCom:
    case Mnemonic::kLsr: case Mnemonic::kRor: case Mnemonic::kAsr:
      return kShift;
    case Mnemonic::kAnd: case Mnemonic::kAndi: case Mnemonic::kOr:
    case Mnemonic::kOri: case Mnemonic::kEor: case Mnemonic::kTst:
    case Mnemonic::kClr: case Mnemonic::kSbr: case Mnemonic::kCbr:
    case Mnemonic::kInc: case Mnemonic::kDec:
      return kLogic;
    case Mnemonic::kBst:
      return 1u << avr::kFlagT;
    case Mnemonic::kBset: case Mnemonic::kBclr:
      return 0xFFu;
    default: {
      std::uint8_t s = 0;
      if (avr::is_flag_shorthand(m, &s)) return static_cast<std::uint8_t>(1u << s);
      return 0;
    }
  }
}

/// Flags a conditional branch reads (0 for everything else).  BRBS/BRBC
/// carry the flag in an operand, so at class level they read any flag.
std::uint8_t flags_branched_on(Mnemonic m) {
  std::uint8_t s = 0;
  if (avr::is_branch_shorthand(m, &s)) return static_cast<std::uint8_t>(1u << s);
  if (m == Mnemonic::kBrbs || m == Mnemonic::kBrbc) return 0xFFu;
  return 0;
}

bool consumes_carry(Mnemonic m) {
  switch (m) {
    case Mnemonic::kAdc: case Mnemonic::kSbc: case Mnemonic::kSbci:
    case Mnemonic::kCpc: case Mnemonic::kRol: case Mnemonic::kRor:
      return true;
    default:
      return false;
  }
}

bool is_skip(Mnemonic m) {
  switch (m) {
    case Mnemonic::kCpse: case Mnemonic::kSbrc: case Mnemonic::kSbrs:
    case Mnemonic::kSbic: case Mnemonic::kSbis:
      return true;
    default:
      return false;
  }
}

/// Control transfer: the window after this one may be a branch target, so
/// the prior imposes no structural constraint across the edge.
bool redirects_control(Mnemonic m) {
  if (avr::info(m).group == 4) return true;  // RJMP/JMP + branch shorthands
  if (m == Mnemonic::kBrbs || m == Mnemonic::kBrbc) return true;
  return is_skip(m);
}

/// Compiler-idiom multiplier within the plausible set.
double idiom_multiplier(Mnemonic from, Mnemonic to, double boost) {
  // Multi-byte arithmetic / wide-compare cascades.
  if ((from == Mnemonic::kCp || from == Mnemonic::kCpc) && to == Mnemonic::kCpc)
    return boost;
  if ((from == Mnemonic::kAdd || from == Mnemonic::kAdc) && to == Mnemonic::kAdc)
    return boost;
  if ((from == Mnemonic::kSub || from == Mnemonic::kSbc) && to == Mnemonic::kSbc)
    return boost;
  if ((from == Mnemonic::kSubi || from == Mnemonic::kSbci) && to == Mnemonic::kSbci)
    return boost;
  // Compare, then branch on the result.
  if ((from == Mnemonic::kCp || from == Mnemonic::kCpc ||
       from == Mnemonic::kCpi || from == Mnemonic::kTst) &&
      flags_branched_on(to) != 0)
    return boost;
  // LDI pairs and immediate-then-store.
  if (from == Mnemonic::kLdi &&
      (to == Mnemonic::kLdi || to == Mnemonic::kSts || to == Mnemonic::kSt ||
       to == Mnemonic::kStd))
    return boost;
  // Skip shadow: SBRS/SBRC guarding a one-word jump.
  if (is_skip(from) && to == Mnemonic::kRjmp) return boost;
  return 1.0;
}

}  // namespace

IsaPrior::IsaPrior(IsaPriorConfig config) : config_(config) { build(nullptr); }

IsaPrior::IsaPrior(const BigramPrior& observed, IsaPriorConfig config)
    : config_(config) {
  build(&observed);
}

void IsaPrior::build(const BigramPrior* observed) {
  const auto& classes = avr::instruction_classes();
  const std::size_t n = classes.size();
  if (observed && observed->num_classes() != n) {
    throw std::invalid_argument(
        "IsaPrior: observed prior must cover the full class table");
  }
  if (!(config_.illegal_mass > 0.0) || config_.illegal_mass >= 1.0) {
    throw std::invalid_argument("IsaPrior: illegal_mass must be in (0, 1)");
  }
  if (!(config_.isa_weight > 0.0)) {
    throw std::invalid_argument("IsaPrior: isa_weight must be > 0");
  }

  log_probs_ = linalg::Matrix(n, n);
  plausible_.assign(n * n, 1);

  // Per-class structural summaries.
  std::vector<Mnemonic> mn(n);
  std::vector<int> group(n);
  std::vector<std::size_t> group_size(n);
  for (std::size_t c = 0; c < n; ++c) {
    mn[c] = classes[c].mnemonic;
    group[c] = classes[c].group;
    group_size[c] = avr::classes_in_group(classes[c].group).size();
  }

  // Group-level backoff counts with a Laplace floor per (group, group) pair.
  double gcounts[9][9] = {};
  for (int a = 1; a <= 8; ++a) {
    for (int b = 1; b <= 8; ++b) gcounts[a][b] = 1.0;
  }
  if (observed) {
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t t = 0; t < n; ++t) {
        gcounts[group[f]][group[t]] += observed->observed(f, t);
      }
    }
  }

  linalg::Vector p_isa(n), p_grp(n), p_obs(n);
  for (std::size_t f = 0; f < n; ++f) {
    const std::uint8_t written = flags_written(mn[f]);
    const bool free_edge = redirects_control(mn[f]);

    // ISA structural tier.
    std::size_t implausible = 0;
    for (std::size_t t = 0; t < n; ++t) {
      bool ok = true;
      if (!free_edge) {
        if (consumes_carry(mn[t]) && !(written & (1u << avr::kFlagC))) ok = false;
        const std::uint8_t read = flags_branched_on(mn[t]);
        if (read != 0 && !(written & read)) ok = false;
      }
      plausible_[f * n + t] = ok ? 1 : 0;
      if (!ok) ++implausible;
    }
    const double eps = config_.illegal_mass / static_cast<double>(n);
    double weight_sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (plausible_[f * n + t]) {
        weight_sum += idiom_multiplier(mn[f], mn[t], config_.idiom_boost);
      }
    }
    const double legal_mass = 1.0 - eps * static_cast<double>(implausible);
    double isa_sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      p_isa[t] = plausible_[f * n + t]
                     ? legal_mass *
                           idiom_multiplier(mn[f], mn[t], config_.idiom_boost) /
                           weight_sum
                     : eps;
      isa_sum += p_isa[t];
    }
    for (std::size_t t = 0; t < n; ++t) p_isa[t] /= isa_sum;

    // Group backoff tier: group-transition probability spread uniformly
    // within the target group.
    double grow = 0.0;
    for (int b = 1; b <= 8; ++b) grow += gcounts[group[f]][b];
    double grp_sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      p_grp[t] = gcounts[group[f]][group[t]] / grow /
                 static_cast<double>(group_size[t]);
      grp_sum += p_grp[t];
    }
    for (std::size_t t = 0; t < n; ++t) p_grp[t] /= grp_sum;

    // Observed tier (only where the corpus left evidence in this row).
    const double row_total = observed ? observed->row_observed(f) : 0.0;
    const bool has_obs = row_total > 0.0;
    if (has_obs) {
      for (std::size_t t = 0; t < n; ++t) {
        p_obs[t] = observed->observed(f, t) / row_total;
      }
    }

    // Per-row renormalized blend over the available tiers.
    const double w_obs = has_obs ? config_.observed_weight : 0.0;
    const double w_all = w_obs + config_.group_weight + config_.isa_weight;
    double blend_sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      double p = (config_.group_weight * p_grp[t] +
                  config_.isa_weight * p_isa[t]) /
                 w_all;
      if (has_obs) p += w_obs * p_obs[t] / w_all;
      log_probs_(f, t) = p;
      blend_sum += p;
    }
    for (std::size_t t = 0; t < n; ++t) {
      log_probs_(f, t) = std::log(log_probs_(f, t) / blend_sum);
    }
  }
}

double IsaPrior::log_prob(std::size_t from, std::size_t to) const {
  return log_probs_.at(from, to);
}

bool IsaPrior::structurally_plausible(std::size_t from, std::size_t to) const {
  const std::size_t n = log_probs_.rows();
  if (from >= n || to >= n) throw std::out_of_range("IsaPrior: class index");
  return plausible_[from * n + to] != 0;
}

std::vector<std::size_t> viterbi_decode(const linalg::Matrix& emissions,
                                        const TransitionPrior& prior,
                                        double prior_weight) {
  const std::size_t t_max = emissions.rows();
  const std::size_t n = emissions.cols();
  if (t_max == 0) return {};
  if (n != prior.num_classes()) {
    throw std::invalid_argument("viterbi_decode: class-count mismatch");
  }

  // Precompute the weighted log-transition matrix once.
  linalg::Matrix log_trans(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      log_trans(a, b) = prior_weight * prior.log_prob(a, b);
    }
  }

  linalg::Matrix score(t_max, n);
  std::vector<std::vector<std::size_t>> back(t_max, std::vector<std::size_t>(n, 0));
  for (std::size_t c = 0; c < n; ++c) score(0, c) = emissions(0, c);

  for (std::size_t t = 1; t < t_max; ++t) {
    for (std::size_t c = 0; c < n; ++c) {
      double best = -1e300;
      std::size_t best_prev = 0;
      for (std::size_t p = 0; p < n; ++p) {
        const double v = score(t - 1, p) + log_trans(p, c);
        if (v > best) {
          best = v;
          best_prev = p;
        }
      }
      score(t, c) = best + emissions(t, c);
      back[t][c] = best_prev;
    }
  }

  std::vector<std::size_t> path(t_max);
  std::size_t best_end = 0;
  for (std::size_t c = 1; c < n; ++c) {
    if (score(t_max - 1, c) > score(t_max - 1, best_end)) best_end = c;
  }
  path[t_max - 1] = best_end;
  for (std::size_t t = t_max - 1; t > 0; --t) path[t - 1] = back[t][path[t]];
  return path;
}

bool ends_basic_block(std::size_t class_idx) {
  const auto& classes = avr::instruction_classes();
  if (class_idx >= classes.size()) throw std::out_of_range("ends_basic_block");
  return redirects_control(classes[class_idx].mnemonic);
}

std::vector<BasicBlock> segment_blocks(const std::vector<std::size_t>& classes) {
  std::vector<BasicBlock> blocks;
  BasicBlock current;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (current.classes.empty()) current.begin = i;
    current.classes.push_back(classes[i]);
    if (ends_basic_block(classes[i])) {
      blocks.push_back(std::move(current));
      current = {};
    }
  }
  if (!current.classes.empty()) blocks.push_back(std::move(current));
  return blocks;
}

double block_recovery_rate(const std::vector<std::size_t>& decoded,
                           const std::vector<std::size_t>& truth) {
  if (decoded.size() != truth.size()) {
    throw std::invalid_argument("block_recovery_rate: length mismatch");
  }
  const std::vector<BasicBlock> truth_blocks = segment_blocks(truth);
  if (truth_blocks.empty()) return 1.0;
  const std::vector<BasicBlock> decoded_blocks = segment_blocks(decoded);
  std::unordered_map<std::size_t, const BasicBlock*> by_begin;
  for (const BasicBlock& b : decoded_blocks) by_begin.emplace(b.begin, &b);
  std::size_t matched = 0;
  for (const BasicBlock& b : truth_blocks) {
    const auto it = by_begin.find(b.begin);
    if (it != by_begin.end() && *it->second == b) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(truth_blocks.size());
}

}  // namespace sidis::core

#include "core/sequence.hpp"

#include <cmath>
#include <stdexcept>

#include "avr/grouping.hpp"

namespace sidis::core {

BigramPrior::BigramPrior(std::size_t num_classes, double smoothing)
    : counts_(num_classes, num_classes, smoothing) {
  if (num_classes == 0) throw std::invalid_argument("BigramPrior: no classes");
  if (!(smoothing > 0.0)) throw std::invalid_argument("BigramPrior: smoothing must be > 0");
}

void BigramPrior::add_program(const avr::Program& program) {
  std::optional<std::size_t> prev;
  for (const avr::Instruction& in : program) {
    const auto cls = avr::class_of(in);
    if (!cls || *cls >= num_classes()) {
      prev.reset();  // unprofiled instruction breaks the chain
      continue;
    }
    if (prev) add_transition(*prev, *cls);
    prev = cls;
  }
}

void BigramPrior::add_transition(std::size_t from, std::size_t to) {
  counts_.at(from, to) += 1.0;
}

double BigramPrior::log_prob(std::size_t from, std::size_t to) const {
  double row = 0.0;
  for (std::size_t c = 0; c < counts_.cols(); ++c) row += counts_(from, c);
  return std::log(counts_.at(from, to) / row);
}

std::vector<std::size_t> viterbi_decode(const linalg::Matrix& emissions,
                                        const BigramPrior& prior,
                                        double prior_weight) {
  const std::size_t t_max = emissions.rows();
  const std::size_t n = emissions.cols();
  if (t_max == 0) return {};
  if (n != prior.num_classes()) {
    throw std::invalid_argument("viterbi_decode: class-count mismatch");
  }

  // Precompute the weighted log-transition matrix once.
  linalg::Matrix log_trans(n, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      log_trans(a, b) = prior_weight * prior.log_prob(a, b);
    }
  }

  linalg::Matrix score(t_max, n);
  std::vector<std::vector<std::size_t>> back(t_max, std::vector<std::size_t>(n, 0));
  for (std::size_t c = 0; c < n; ++c) score(0, c) = emissions(0, c);

  for (std::size_t t = 1; t < t_max; ++t) {
    for (std::size_t c = 0; c < n; ++c) {
      double best = -1e300;
      std::size_t best_prev = 0;
      for (std::size_t p = 0; p < n; ++p) {
        const double v = score(t - 1, p) + log_trans(p, c);
        if (v > best) {
          best = v;
          best_prev = p;
        }
      }
      score(t, c) = best + emissions(t, c);
      back[t][c] = best_prev;
    }
  }

  std::vector<std::size_t> path(t_max);
  std::size_t best_end = 0;
  for (std::size_t c = 1; c < n; ++c) {
    if (score(t_max - 1, c) > score(t_max - 1, best_end)) best_end = c;
  }
  path[t_max - 1] = best_end;
  for (std::size_t t = t_max - 1; t > 0; --t) path[t - 1] = back[t][path[t]];
  return path;
}

}  // namespace sidis::core

#include "core/hierarchical.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "avr/isa.hpp"
#include "core/sequence.hpp"

namespace sidis::core {

namespace {

/// A level with one distinct label needs no classifier -- e.g. the group
/// level when every profiled class lives in the same group.
bool single_label(const std::vector<int>& labels) {
  return std::all_of(labels.begin(), labels.end(),
                     [&](int l) { return l == labels.front(); });
}

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Low quantile of an unsorted sample (sorts a copy; calibration-time only).
double low_quantile(std::vector<double> v, double q) {
  if (v.empty()) return -kInf;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kDegraded: return "degraded";
    case Verdict::kRejected: return "rejected";
  }
  return "unknown";
}

std::string to_string(RejectOperatingPoint point) {
  switch (point) {
    case RejectOperatingPoint::kMonitoring: return "monitoring";
    case RejectOperatingPoint::kBalanced: return "balanced";
    case RejectOperatingPoint::kStrict: return "strict";
    case RejectOperatingPoint::kCustom: return "custom";
  }
  return "unknown";
}

RejectConfig reject_config_for(RejectOperatingPoint point) {
  // Quantiles are monotone across the presets (and balanced/strict shrink
  // the slack), which makes the gate floors monotone and the rejection sets
  // nested -- see the enum comment; the core_test battery pins this.
  switch (point) {
    case RejectOperatingPoint::kMonitoring: return RejectConfig{0.005, 0.005, 0.5};
    case RejectOperatingPoint::kBalanced: return RejectConfig{0.02, 0.02, 0.25};
    case RejectOperatingPoint::kStrict: return RejectConfig{0.05, 0.05, 0.0};
    case RejectOperatingPoint::kCustom: break;
  }
  throw std::invalid_argument("reject_config_for: kCustom names no preset");
}

avr::Instruction Disassembly::to_instruction() const {
  const avr::ClassSpec& spec = avr::instruction_classes().at(class_idx);
  avr::Instruction in;
  in.mnemonic = spec.mnemonic;
  in.mode = spec.mode;
  if (rd) in.rd = *rd;
  if (rr) in.rr = *rr;
  return in;
}

std::string Disassembly::text() const { return avr::to_string(to_instruction()); }

HierarchicalDisassembler::Level HierarchicalDisassembler::train_level(
    const features::LabeledTraces& input, const HierarchicalConfig& config,
    std::size_t components) {
  Level level;
  level.components = components;
  if (single_label(input.labels)) {
    level.trivial = true;
    level.only_label = input.labels.front();
    return level;
  }
  level.pipeline = features::FeaturePipeline::fit(input, config.pipeline);
  const ml::Dataset train = level.pipeline.transform(input, components);
  level.classifier = ml::make_classifier(config.classifier, config.factory);
  level.classifier->fit(train);
  return level;
}

HierarchicalDisassembler::Level HierarchicalDisassembler::train_level_precomputed(
    const std::vector<const features::FeaturePipeline::ClassData*>& data,
    const features::LabeledTraces& input, const HierarchicalConfig& config,
    std::size_t components) {
  Level level;
  level.components = components;
  if (single_label(input.labels)) {
    level.trivial = true;
    level.only_label = input.labels.front();
    return level;
  }
  level.pipeline = features::FeaturePipeline::fit(data, config.pipeline);
  const ml::Dataset train = level.pipeline.transform(input, components);
  level.classifier = ml::make_classifier(config.classifier, config.factory);
  level.classifier->fit(train);
  return level;
}

int HierarchicalDisassembler::predict_level(const Level& level,
                                            const sim::Trace& trace,
                                            std::size_t components) {
  if (level.trivial) return level.only_label;
  if (level.classifier == nullptr) throw std::runtime_error("level not trained");
  const std::size_t k = components == SIZE_MAX ? level.components : components;
  // When the caller overrides the component count we must also truncate what
  // the classifier saw at fit time, so overrides only make sense on levels
  // evaluated standalone; the benches refit per sweep point instead.
  return level.classifier->predict(level.pipeline.transform(trace, k));
}

ml::ScoredPrediction HierarchicalDisassembler::predict_level_scored(
    const Level& level, const sim::Trace& trace, std::size_t components) {
  if (level.trivial) return {level.only_label, kInf, kInf};
  if (level.classifier == nullptr) throw std::runtime_error("level not trained");
  const std::size_t k = components == SIZE_MAX ? level.components : components;
  return level.classifier->predict_scored(level.pipeline.transform(trace, k));
}

/// One window being classified through several levels: the per-trace
/// normalization is computed at most once and shared by every level that
/// wants it (all levels of one model share the per_trace_normalization
/// setting, but the lazy split keeps mixed configurations correct too).
struct HierarchicalDisassembler::PreparedWindow {
  const sim::Trace* trace = nullptr;
  std::optional<std::vector<double>> normalized;

  const std::vector<double>& prepared_for(const features::FeaturePipeline& pipeline) {
    if (!pipeline.config().per_trace_normalization) return trace->samples;
    if (!normalized) {
      normalized = features::FeaturePipeline::preprocess_window(*trace, true);
    }
    return *normalized;
  }
};

ml::ScoredPrediction HierarchicalDisassembler::predict_level_prepared(
    const Level& level, PreparedWindow& window, dsp::CwtWorkspace& ws) {
  if (level.trivial) return {level.only_label, kInf, kInf};
  if (level.classifier == nullptr) throw std::runtime_error("level not trained");
  return level.classifier->predict_scored(level.pipeline.transform_prepared(
      window.prepared_for(level.pipeline), level.components, ws));
}

void HierarchicalDisassembler::calibrate_level(Level& level,
                                               const features::LabeledTraces& input,
                                               const RejectConfig& config) {
  if (level.trivial) return;
  std::vector<double> margins;
  std::vector<double> scores;
  for (const sim::TraceSet* set : input.sets) {
    for (const sim::Trace& trace : *set) {
      const ml::ScoredPrediction p = predict_level_scored(level, trace, SIZE_MAX);
      margins.push_back(p.margin);
      scores.push_back(p.top_score);
    }
  }
  if (margins.empty()) return;
  level.gate.margin_floor = low_quantile(margins, config.margin_quantile);
  const double q = low_quantile(scores, config.score_quantile);
  const double median = low_quantile(scores, 0.5);
  // Widen the outlier floor below the clean quantile; the spread to the
  // median scales the slack to the level's own score dispersion.
  level.gate.score_floor = q - config.score_slack * std::max(0.0, median - q);
  level.gate.active = true;
}

void HierarchicalDisassembler::calibrate_reject(const ProfilingData& clean,
                                                RejectOperatingPoint point) {
  calibrate_reject(clean, reject_config_for(point));
  reject_point_ = point;
}

void HierarchicalDisassembler::calibrate_reject(const ProfilingData& clean,
                                                const RejectConfig& config) {
  reject_point_ = RejectOperatingPoint::kCustom;
  features::LabeledTraces group_input;
  std::map<int, features::LabeledTraces> per_group;
  for (const auto& [class_idx, traces] : clean.classes) {
    const int group = avr::group_of_class(class_idx);
    group_input.labels.push_back(group);
    group_input.sets.push_back(&traces);
    per_group[group].labels.push_back(static_cast<int>(class_idx));
    per_group[group].sets.push_back(&traces);
  }
  if (!group_input.sets.empty()) {
    calibrate_level(group_level_, group_input, config);
  }
  for (auto& [group, level] : instruction_levels_) {
    const auto it = per_group.find(group);
    if (it != per_group.end()) calibrate_level(level, it->second, config);
  }
  const auto calibrate_registers = [&](Level* level,
                                       const std::map<std::uint8_t, sim::TraceSet>& sets) {
    if (level == nullptr || sets.empty()) return;
    features::LabeledTraces input;
    for (const auto& [reg, traces] : sets) {
      input.labels.push_back(static_cast<int>(reg));
      input.sets.push_back(&traces);
    }
    calibrate_level(*level, input, config);
  };
  calibrate_registers(rd_level_.get(), clean.rd_classes);
  calibrate_registers(rr_level_.get(), clean.rr_classes);
}

void HierarchicalDisassembler::recalibrate(const sim::TraceSet& recal, bool rescale) {
  const auto renorm = [&](Level& level) {
    if (level.trivial) return;
    level.pipeline = level.pipeline.renormalized(recal, rescale);
  };
  renorm(group_level_);
  for (auto& [group, level] : instruction_levels_) {
    (void)group;
    renorm(level);
  }
  if (rd_level_) renorm(*rd_level_);
  if (rr_level_) renorm(*rr_level_);
}

void HierarchicalDisassembler::refit_classifiers(const ProfilingData& data) {
  const auto refit = [&](Level& level, const features::LabeledTraces& input) {
    if (level.trivial || level.classifier == nullptr) return;
    // Can't retrain a decision boundary on fewer than two labels.
    if (input.sets.size() < 2 || single_label(input.labels)) return;
    const ml::Dataset train = level.pipeline.transform(input, level.components);
    auto classifier = ml::make_classifier(config_.classifier, config_.factory);
    classifier->fit(train);
    level.classifier = std::move(classifier);
  };

  features::LabeledTraces group_input;
  std::map<int, features::LabeledTraces> per_group;
  for (const auto& [class_idx, traces] : data.classes) {
    if (traces.empty()) continue;
    const int group = avr::group_of_class(class_idx);
    group_input.labels.push_back(group);
    group_input.sets.push_back(&traces);
    per_group[group].labels.push_back(static_cast<int>(class_idx));
    per_group[group].sets.push_back(&traces);
  }
  refit(group_level_, group_input);
  for (auto& [group, level] : instruction_levels_) {
    const auto it = per_group.find(group);
    if (it != per_group.end()) refit(level, it->second);
  }
  const auto refit_registers = [&](Level* level,
                                   const std::map<std::uint8_t, sim::TraceSet>& sets) {
    if (level == nullptr || sets.empty()) return;
    features::LabeledTraces input;
    for (const auto& [reg, traces] : sets) {
      input.labels.push_back(static_cast<int>(reg));
      input.sets.push_back(&traces);
    }
    refit(*level, input);
  };
  refit_registers(rd_level_.get(), data.rd_classes);
  refit_registers(rr_level_.get(), data.rr_classes);
}

HierarchicalDisassembler HierarchicalDisassembler::train(const ProfilingData& data,
                                                         HierarchicalConfig config) {
  if (data.classes.empty()) {
    throw std::invalid_argument("HierarchicalDisassembler::train: no profiled classes");
  }
  HierarchicalDisassembler d;
  d.config_ = config;

  // Levels 1 and 2 see the same traces (level 1 with group labels, level 2
  // with class labels), so the expensive per-class CWT moment/mask pass is
  // computed once and shared.
  features::LabeledTraces class_input;
  features::LabeledTraces group_input;
  std::map<int, features::LabeledTraces> per_group;
  for (const auto& [class_idx, traces] : data.classes) {
    if (traces.empty()) {
      throw std::invalid_argument("HierarchicalDisassembler::train: empty class corpus");
    }
    const int group = avr::group_of_class(class_idx);
    class_input.labels.push_back(static_cast<int>(class_idx));
    class_input.sets.push_back(&traces);
    group_input.labels.push_back(group);
    group_input.sets.push_back(&traces);
    per_group[group].labels.push_back(static_cast<int>(class_idx));
    per_group[group].sets.push_back(&traces);
  }
  const std::vector<features::FeaturePipeline::ClassData> precomputed =
      features::FeaturePipeline::precompute(class_input, config.pipeline);
  std::map<std::size_t, const features::FeaturePipeline::ClassData*> by_class;
  for (const auto& cd : precomputed) {
    by_class[static_cast<std::size_t>(cd.label)] = &cd;
  }

  // Level 1: group classification over all profiled classes.  The pipeline
  // fit only consumes moments/masks/traces, so class-level precompute data
  // serves directly; the classifier pools samples by the group labels.
  {
    std::vector<const features::FeaturePipeline::ClassData*> all;
    for (const auto& cd : precomputed) all.push_back(&cd);
    d.group_level_ =
        train_level_precomputed(all, group_input, config, config.group_components);
  }

  // Level 2: one model per group with at least 2 profiled classes.
  for (const auto& [group, input] : per_group) {
    std::vector<const features::FeaturePipeline::ClassData*> subset;
    for (int label : input.labels) {
      subset.push_back(by_class.at(static_cast<std::size_t>(label)));
    }
    d.instruction_levels_[group] = train_level_precomputed(
        subset, input, config, config.instruction_components);
  }

  // Level 3: register recovery.
  const auto train_registers = [&](const std::map<std::uint8_t, sim::TraceSet>& sets)
      -> std::unique_ptr<Level> {
    if (sets.size() < 2) return nullptr;
    features::LabeledTraces input;
    for (const auto& [reg, traces] : sets) {
      input.labels.push_back(static_cast<int>(reg));
      input.sets.push_back(&traces);
    }
    return std::make_unique<Level>(
        train_level(input, config, config.register_components));
  };
  d.rd_level_ = train_registers(data.rd_classes);
  d.rr_level_ = train_registers(data.rr_classes);

  // Posterior support: exactly the profiled classes (data.classes is an
  // ordered map, so the support comes out ascending).
  for (const auto& [class_idx, traces] : data.classes) {
    (void)traces;
    d.posterior_classes_.push_back(class_idx);
  }

  // Training moments for drift monitoring: pool every training trace through
  // the monitor level's pipeline and keep per-feature mean/variance.  The
  // batched transform is worker-count-invariant, and the row-order reduction
  // below is sequential, so the moments are bit-identical for any
  // PipelineConfig::workers setting.
  if (const Level* watch = d.monitor_level(); watch != nullptr) {
    const ml::Dataset projected =
        watch->pipeline.transform(class_input, watch->components);
    if (projected.size() > 0) {
      const std::size_t dim = projected.dim();
      const double n = static_cast<double>(projected.size());
      linalg::Vector mean(dim, 0.0);
      linalg::Vector sq(dim, 0.0);
      for (std::size_t r = 0; r < projected.size(); ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
          mean[c] += projected.x(r, c);
          sq[c] += projected.x(r, c) * projected.x(r, c);
        }
      }
      linalg::Vector variance(dim, 0.0);
      for (std::size_t c = 0; c < dim; ++c) {
        mean[c] /= n;
        variance[c] = std::max(0.0, sq[c] / n - mean[c] * mean[c]);
      }
      d.training_moments_ = {std::move(mean), std::move(variance),
                             static_cast<std::uint64_t>(projected.size())};
    }
  }
  return d;
}

const HierarchicalDisassembler::Level* HierarchicalDisassembler::monitor_level() const {
  if (!group_level_.trivial) return &group_level_;
  for (const auto& [group, level] : instruction_levels_) {
    (void)group;
    if (!level.trivial) return &level;
  }
  return nullptr;
}

linalg::Vector HierarchicalDisassembler::monitor_features(const sim::Trace& trace) const {
  const Level* level = monitor_level();
  if (level == nullptr) {
    throw std::runtime_error("monitor_features: every level is trivial");
  }
  return level->pipeline.transform(trace, level->components);
}

int HierarchicalDisassembler::classify_group(const sim::Trace& trace,
                                             std::size_t components) const {
  return predict_level(group_level_, trace, components);
}

std::size_t HierarchicalDisassembler::classify_within_group(
    int group, const sim::Trace& trace, std::size_t components) const {
  const auto it = instruction_levels_.find(group);
  if (it == instruction_levels_.end()) {
    throw std::invalid_argument("classify_within_group: group not trained");
  }
  return static_cast<std::size_t>(predict_level(it->second, trace, components));
}

std::uint8_t HierarchicalDisassembler::classify_rd(const sim::Trace& trace,
                                                   std::size_t components) const {
  if (rd_level_ == nullptr) throw std::runtime_error("Rd level not trained");
  return static_cast<std::uint8_t>(predict_level(*rd_level_, trace, components));
}

std::uint8_t HierarchicalDisassembler::classify_rr(const sim::Trace& trace,
                                                   std::size_t components) const {
  if (rr_level_ == nullptr) throw std::runtime_error("Rr level not trained");
  return static_cast<std::uint8_t>(predict_level(*rr_level_, trace, components));
}

Disassembly HierarchicalDisassembler::classify_prepared(PreparedWindow& window,
                                                        dsp::CwtWorkspace& ws) const {
  Disassembly out;

  // Walks every level through the scored path and folds each calibrated
  // gate's headroom into the verdict.  `fatal` gates (group/instruction)
  // reject the window; register gates only degrade it -- the opcode is still
  // trusted, the operand is not.
  const auto gate = [&out](const Level& level, const ml::ScoredPrediction& p,
                           bool fatal) {
    if (!level.gate.active) return;
    const double margin_headroom = p.margin - level.gate.margin_floor;
    const double score_headroom = p.top_score - level.gate.score_floor;
    out.margin_headroom = std::min(out.margin_headroom, margin_headroom);
    out.score_headroom = std::min(out.score_headroom, score_headroom);
    if (margin_headroom < 0.0 || score_headroom < 0.0) {
      out.verdict = fatal ? Verdict::kRejected
                          : std::max(out.verdict, Verdict::kDegraded);
    }
  };

  const ml::ScoredPrediction g = predict_level_prepared(group_level_, window, ws);
  out.group = g.label;
  gate(group_level_, g, /*fatal=*/true);

  const auto it = instruction_levels_.find(out.group);
  if (it == instruction_levels_.end()) {
    throw std::invalid_argument("classify_within_group: group not trained");
  }
  const ml::ScoredPrediction c = predict_level_prepared(it->second, window, ws);
  out.class_idx = static_cast<std::size_t>(c.label);
  gate(it->second, c, /*fatal=*/true);

  if (avr::class_uses_rd(out.class_idx) && rd_level_ != nullptr) {
    const ml::ScoredPrediction p = predict_level_prepared(*rd_level_, window, ws);
    out.rd = static_cast<std::uint8_t>(p.label);
    gate(*rd_level_, p, /*fatal=*/false);
  }
  if (avr::class_uses_rr(out.class_idx) && rr_level_ != nullptr) {
    const ml::ScoredPrediction p = predict_level_prepared(*rr_level_, window, ws);
    out.rr = static_cast<std::uint8_t>(p.label);
    gate(*rr_level_, p, /*fatal=*/false);
  }
  return out;
}

Disassembly HierarchicalDisassembler::classify(const sim::Trace& trace) const {
  dsp::CwtWorkspace ws;
  PreparedWindow window{&trace, std::nullopt};
  return classify_prepared(window, ws);
}

std::vector<Disassembly> HierarchicalDisassembler::classify_batch(
    const sim::TraceSet& traces) const {
  std::vector<Disassembly> out(traces.size());
  if (traces.empty()) return out;

  // The SoA batch primitives want equal-length lanes, so windows bucket by
  // trace length first (one CWT/FFT geometry per bucket).  Singleton and
  // degenerate buckets take the scalar path -- a one-lane SoA pass would be
  // pure marshalling overhead.  Every multi-lane bucket then flows through
  // the lane-vectorized pipeline: batch CWT + fused feature transform +
  // blocked QDA scoring, all of which keep the scalar per-window accumulation
  // order, so each Disassembly (label, headrooms, verdict) is bit-identical
  // to classify() on that window.
  std::map<std::size_t, std::vector<std::size_t>> by_length;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    by_length[traces[i].samples.size()].push_back(i);
  }

  dsp::CwtWorkspace scalar_ws;   // grow-once scratch for scalar fallbacks
  dsp::CwtBatchWorkspace batch_ws;  // grow-once scratch for every bucket

  // The exact gate fold of classify_prepared, applied per window.
  const auto gate = [](Disassembly& o, const Level& level,
                       const ml::ScoredPrediction& p, bool fatal) {
    if (!level.gate.active) return;
    const double margin_headroom = p.margin - level.gate.margin_floor;
    const double score_headroom = p.top_score - level.gate.score_floor;
    o.margin_headroom = std::min(o.margin_headroom, margin_headroom);
    o.score_headroom = std::min(o.score_headroom, score_headroom);
    if (margin_headroom < 0.0 || score_headroom < 0.0) {
      o.verdict = fatal ? Verdict::kRejected
                        : std::max(o.verdict, Verdict::kDegraded);
    }
  };

  for (const auto& [length, idx] : by_length) {
    if (idx.size() < 2 || length == 0) {
      for (const std::size_t i : idx) {
        PreparedWindow window{&traces[i], std::nullopt};
        out[i] = classify_prepared(window, scalar_ws);
      }
      continue;
    }

    const std::size_t n = idx.size();

    // Per-window preprocessing, computed once per bucket and shared by every
    // level that wants it -- the batch counterpart of PreparedWindow's lazy
    // normalization split (all levels of one model share the
    // per_trace_normalization flag, but the lazy form keeps mixed
    // configurations correct too).  The whole bucket marshals into ONE
    // struct-of-arrays block per view kind; the up-to-four level pipelines
    // read it in place, and sub-bucket levels gather just their lanes from
    // it (row-contiguous copies) instead of re-marshalling from the
    // scattered per-window vectors.
    std::vector<double> soa_raw, soa_norm;  // full-bucket SoA, lazy per kind
    std::vector<double> soa_subset;         // per-call lane gather, grow-once
    const auto bucket_soa = [&](bool normalize) -> const std::vector<double>& {
      std::vector<double>& soa = normalize ? soa_norm : soa_raw;
      if (soa.empty()) {
        std::vector<const std::vector<double>*> ptrs(n);
        std::vector<std::vector<double>> normalized;
        if (normalize) {
          normalized.resize(n);
          for (std::size_t p = 0; p < n; ++p) {
            normalized[p] =
                features::FeaturePipeline::preprocess_window(traces[idx[p]], true);
            ptrs[p] = &normalized[p];
          }
        } else {
          for (std::size_t p = 0; p < n; ++p) ptrs[p] = &traces[idx[p]].samples;
        }
        dsp::Cwt::marshal({ptrs.data(), ptrs.size()}, soa);
      }
      return soa;
    };

    // predict_level_prepared over a subset of the bucket, lane-vectorized.
    const auto predict_batch = [&](const Level& level,
                                   std::span<const std::size_t> subset) {
      if (level.trivial) {
        return std::vector<ml::ScoredPrediction>(
            subset.size(), ml::ScoredPrediction{level.only_label, kInf, kInf});
      }
      if (level.classifier == nullptr) throw std::runtime_error("level not trained");
      const std::vector<double>& full =
          bucket_soa(level.pipeline.config().per_trace_normalization);
      const std::size_t m = subset.size();
      std::span<const double> soa(full);
      if (m != n) {
        soa_subset.resize(length * m);
        for (std::size_t t = 0; t < length; ++t) {
          const double* __restrict src = full.data() + t * n;
          double* __restrict dst = soa_subset.data() + t * m;
          for (std::size_t i = 0; i < m; ++i) dst[i] = src[subset[i]];
        }
        soa = soa_subset;
      }
      const linalg::Matrix feats = level.pipeline.transform_soa_batch(
          soa, length, m, level.components, batch_ws);
      return level.classifier->predict_scored_batch(feats);
    };

    std::vector<std::size_t> all(n);
    for (std::size_t p = 0; p < n; ++p) all[p] = p;

    // Level 1: one batch over the whole bucket.
    const std::vector<ml::ScoredPrediction> g = predict_batch(group_level_, all);
    for (std::size_t p = 0; p < n; ++p) {
      Disassembly& o = out[idx[p]];
      o.group = g[p].label;
      gate(o, group_level_, g[p], /*fatal=*/true);
    }

    // Level 2: partition the bucket by predicted group, one batch per group.
    std::map<int, std::vector<std::size_t>> by_group;
    for (std::size_t p = 0; p < n; ++p) by_group[out[idx[p]].group].push_back(p);
    for (const auto& [group, subset] : by_group) {
      const auto it = instruction_levels_.find(group);
      if (it == instruction_levels_.end()) {
        throw std::invalid_argument("classify_within_group: group not trained");
      }
      const std::vector<ml::ScoredPrediction> c = predict_batch(it->second, subset);
      for (std::size_t i = 0; i < subset.size(); ++i) {
        Disassembly& o = out[idx[subset[i]]];
        o.class_idx = static_cast<std::size_t>(c[i].label);
        gate(o, it->second, c[i], /*fatal=*/true);
      }
    }

    // Level 3: operand recovery over the windows whose class uses each one.
    const auto predict_registers = [&](const Level* level, bool rd) {
      if (level == nullptr) return;
      std::vector<std::size_t> subset;
      for (std::size_t p = 0; p < n; ++p) {
        const std::size_t class_idx = out[idx[p]].class_idx;
        if (rd ? avr::class_uses_rd(class_idx) : avr::class_uses_rr(class_idx)) {
          subset.push_back(p);
        }
      }
      if (subset.empty()) return;
      const std::vector<ml::ScoredPrediction> r = predict_batch(*level, subset);
      for (std::size_t i = 0; i < subset.size(); ++i) {
        Disassembly& o = out[idx[subset[i]]];
        if (rd) {
          o.rd = static_cast<std::uint8_t>(r[i].label);
        } else {
          o.rr = static_cast<std::uint8_t>(r[i].label);
        }
        gate(o, *level, r[i], /*fatal=*/false);
      }
    };
    predict_registers(rd_level_.get(), /*rd=*/true);
    predict_registers(rr_level_.get(), /*rd=*/false);
  }
  return out;
}

void HierarchicalDisassembler::finalize_posterior_support() {
  posterior_classes_.clear();
  for (const auto& [group, level] : instruction_levels_) {
    (void)group;
    if (level.trivial) {
      posterior_classes_.push_back(static_cast<std::size_t>(level.only_label));
      continue;
    }
    if (level.classifier == nullptr) continue;
    for (const int label : level.classifier->score_labels()) {
      posterior_classes_.push_back(static_cast<std::size_t>(label));
    }
  }
  std::sort(posterior_classes_.begin(), posterior_classes_.end());
  posterior_classes_.erase(
      std::unique(posterior_classes_.begin(), posterior_classes_.end()),
      posterior_classes_.end());
}

Disassembly HierarchicalDisassembler::classify_prepared_scored(
    PreparedWindow& window, dsp::CwtWorkspace& ws) const {
  Disassembly out;

  // The exact gate fold of classify_prepared: the scored path feeds the
  // gates the same level scores, so verdicts and headrooms stay
  // bit-identical to classify().
  const auto gate = [&out](const Level& level, const ml::ScoredPrediction& p,
                           bool fatal) {
    if (!level.gate.active) return;
    const double margin_headroom = p.margin - level.gate.margin_floor;
    const double score_headroom = p.top_score - level.gate.score_floor;
    out.margin_headroom = std::min(out.margin_headroom, margin_headroom);
    out.score_headroom = std::min(out.score_headroom, score_headroom);
    if (margin_headroom < 0.0 || score_headroom < 0.0) {
      out.verdict = fatal ? Verdict::kRejected
                          : std::max(out.verdict, Verdict::kDegraded);
    }
  };

  const auto level_scores = [&](const Level& level) {
    return level.classifier->class_scores(level.pipeline.transform_prepared(
        window.prepared_for(level.pipeline), level.components, ws));
  };

  // Level 1: log P(group | x), one entry per group label the classifier can
  // emit.  A hard-decision group classifier (no score surface) degrades to a
  // one-hot factor at its prediction.
  std::vector<int> group_labels;
  linalg::Vector group_logp;
  if (group_level_.trivial) {
    out.group = group_level_.only_label;
    group_labels = {group_level_.only_label};
    group_logp = linalg::Vector{0.0};
  } else {
    const linalg::Vector s = level_scores(group_level_);
    ml::ScoredPrediction g;
    if (s.empty()) {
      g = predict_level_prepared(group_level_, window, ws);
      group_labels = {g.label};
      group_logp = linalg::Vector{0.0};
    } else {
      group_labels = group_level_.classifier->score_labels();
      g = ml::scored_from_scores(s, group_labels);
      group_logp = log_softmax(s);
    }
    out.group = g.label;
    gate(group_level_, g, /*fatal=*/true);
  }
  if (instruction_levels_.find(out.group) == instruction_levels_.end()) {
    throw std::invalid_argument("classify_within_group: group not trained");
  }
  const auto group_log = [&](int group) {
    for (std::size_t i = 0; i < group_labels.size(); ++i) {
      if (group_labels[i] == group) return group_logp[i];
    }
    return -kInf;
  };

  out.log_posterior.assign(posterior_classes_.size(), -kInf);
  const auto post_at = [&](std::size_t cls) -> double& {
    const auto it = std::lower_bound(posterior_classes_.begin(),
                                     posterior_classes_.end(), cls);
    if (it == posterior_classes_.end() || *it != cls) {
      throw std::logic_error("classify_scored: class outside posterior support");
    }
    return out.log_posterior[static_cast<std::size_t>(
        it - posterior_classes_.begin())];
  };

  // Level 2: every trained group runs, so the posterior keeps honest mass
  // outside the predicted group; only the predicted group's prediction
  // drives the verdict, exactly as in classify_prepared.
  for (const auto& [group, level] : instruction_levels_) {
    const double g_lp = group_log(group);
    if (level.trivial) {
      const auto cls = static_cast<std::size_t>(level.only_label);
      if (group == out.group) out.class_idx = cls;
      post_at(cls) = g_lp;  // + log 1
      continue;
    }
    const linalg::Vector s = level_scores(level);
    if (s.empty()) {
      const ml::ScoredPrediction c = predict_level_prepared(level, window, ws);
      if (group == out.group) {
        out.class_idx = static_cast<std::size_t>(c.label);
        gate(level, c, /*fatal=*/true);
      }
      post_at(static_cast<std::size_t>(c.label)) = g_lp;
      continue;
    }
    const std::vector<int>& labels = level.classifier->score_labels();
    if (group == out.group) {
      const ml::ScoredPrediction c = ml::scored_from_scores(s, labels);
      out.class_idx = static_cast<std::size_t>(c.label);
      gate(level, c, /*fatal=*/true);
    }
    const linalg::Vector lp = log_softmax(s);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      post_at(static_cast<std::size_t>(labels[i])) = g_lp + lp[i];
    }
  }

  if (avr::class_uses_rd(out.class_idx) && rd_level_ != nullptr) {
    const ml::ScoredPrediction p = predict_level_prepared(*rd_level_, window, ws);
    out.rd = static_cast<std::uint8_t>(p.label);
    gate(*rd_level_, p, /*fatal=*/false);
  }
  if (avr::class_uses_rr(out.class_idx) && rr_level_ != nullptr) {
    const ml::ScoredPrediction p = predict_level_prepared(*rr_level_, window, ws);
    out.rr = static_cast<std::uint8_t>(p.label);
    gate(*rr_level_, p, /*fatal=*/false);
  }
  return out;
}

Disassembly HierarchicalDisassembler::classify_scored(const sim::Trace& trace) const {
  dsp::CwtWorkspace ws;
  PreparedWindow window{&trace, std::nullopt};
  return classify_prepared_scored(window, ws);
}

std::vector<Disassembly> HierarchicalDisassembler::classify_batch_scored(
    const sim::TraceSet& traces) const {
  std::vector<Disassembly> out(traces.size());
  if (traces.empty()) return out;

  // The lane-vectorized path needs a score surface at the group level and in
  // every non-trivial level-2 model; hard-decision classifiers fall back to
  // the scalar scored path window by window.
  const auto has_scores = [](const Level& level) {
    return level.trivial || (level.classifier != nullptr &&
                             !level.classifier->score_labels().empty());
  };
  bool all_scored = has_scores(group_level_);
  for (const auto& [group, level] : instruction_levels_) {
    (void)group;
    all_scored = all_scored && has_scores(level);
  }
  if (!all_scored) {
    dsp::CwtWorkspace ws;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      PreparedWindow window{&traces[i], std::nullopt};
      out[i] = classify_prepared_scored(window, ws);
    }
    return out;
  }

  std::map<std::size_t, std::vector<std::size_t>> by_length;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    by_length[traces[i].samples.size()].push_back(i);
  }

  dsp::CwtWorkspace scalar_ws;
  dsp::CwtBatchWorkspace batch_ws;

  const auto gate = [](Disassembly& o, const Level& level,
                       const ml::ScoredPrediction& p, bool fatal) {
    if (!level.gate.active) return;
    const double margin_headroom = p.margin - level.gate.margin_floor;
    const double score_headroom = p.top_score - level.gate.score_floor;
    o.margin_headroom = std::min(o.margin_headroom, margin_headroom);
    o.score_headroom = std::min(o.score_headroom, score_headroom);
    if (margin_headroom < 0.0 || score_headroom < 0.0) {
      o.verdict = fatal ? Verdict::kRejected
                        : std::max(o.verdict, Verdict::kDegraded);
    }
  };

  const auto post_index = [&](std::size_t cls) {
    const auto it = std::lower_bound(posterior_classes_.begin(),
                                     posterior_classes_.end(), cls);
    if (it == posterior_classes_.end() || *it != cls) {
      throw std::logic_error("classify_scored: class outside posterior support");
    }
    return static_cast<std::size_t>(it - posterior_classes_.begin());
  };

  for (const auto& [length, idx] : by_length) {
    if (idx.size() < 2 || length == 0) {
      for (const std::size_t i : idx) {
        PreparedWindow window{&traces[i], std::nullopt};
        out[i] = classify_prepared_scored(window, scalar_ws);
      }
      continue;
    }

    const std::size_t n = idx.size();
    for (const std::size_t i : idx) {
      out[i].log_posterior.assign(posterior_classes_.size(), -kInf);
    }

    // Full-bucket SoA marshal shared across levels -- identical to
    // classify_batch (see the comment there).
    std::vector<double> soa_raw, soa_norm;
    std::vector<double> soa_subset;
    const auto bucket_soa = [&](bool normalize) -> const std::vector<double>& {
      std::vector<double>& soa = normalize ? soa_norm : soa_raw;
      if (soa.empty()) {
        std::vector<const std::vector<double>*> ptrs(n);
        std::vector<std::vector<double>> normalized;
        if (normalize) {
          normalized.resize(n);
          for (std::size_t p = 0; p < n; ++p) {
            normalized[p] =
                features::FeaturePipeline::preprocess_window(traces[idx[p]], true);
            ptrs[p] = &normalized[p];
          }
        } else {
          for (std::size_t p = 0; p < n; ++p) ptrs[p] = &traces[idx[p]].samples;
        }
        dsp::Cwt::marshal({ptrs.data(), ptrs.size()}, soa);
      }
      return soa;
    };

    const auto level_feats = [&](const Level& level,
                                 std::span<const std::size_t> subset) {
      const std::vector<double>& full =
          bucket_soa(level.pipeline.config().per_trace_normalization);
      const std::size_t m = subset.size();
      std::span<const double> soa(full);
      if (m != n) {
        soa_subset.resize(length * m);
        for (std::size_t t = 0; t < length; ++t) {
          const double* __restrict src = full.data() + t * n;
          double* __restrict dst = soa_subset.data() + t * m;
          for (std::size_t i = 0; i < m; ++i) dst[i] = src[subset[i]];
        }
        soa = soa_subset;
      }
      return level.pipeline.transform_soa_batch(soa, length, m,
                                                level.components, batch_ws);
    };

    std::vector<std::size_t> all(n);
    for (std::size_t p = 0; p < n; ++p) all[p] = p;

    // Level 1 over the whole bucket, score surfaces kept.  Each lane's
    // column replays the exact scalar scored path: scored_from_scores for
    // the gate, log_softmax for the posterior factor.
    std::vector<int> group_labels;
    linalg::Matrix group_logp;  // (#group labels x lanes)
    if (group_level_.trivial) {
      group_labels = {group_level_.only_label};
      group_logp = linalg::Matrix(1, n, 0.0);
      for (std::size_t p = 0; p < n; ++p) out[idx[p]].group = group_level_.only_label;
    } else {
      const linalg::Matrix s =
          group_level_.classifier->class_scores_batch(level_feats(group_level_, all));
      group_labels = group_level_.classifier->score_labels();
      group_logp = linalg::Matrix(s.rows(), n);
      linalg::Vector col(s.rows());
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t c = 0; c < s.rows(); ++c) col[c] = s(c, p);
        Disassembly& o = out[idx[p]];
        const ml::ScoredPrediction g = ml::scored_from_scores(col, group_labels);
        o.group = g.label;
        gate(o, group_level_, g, /*fatal=*/true);
        const linalg::Vector lp = log_softmax(col);
        for (std::size_t c = 0; c < s.rows(); ++c) group_logp(c, p) = lp[c];
      }
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (instruction_levels_.find(out[idx[p]].group) == instruction_levels_.end()) {
        throw std::invalid_argument("classify_within_group: group not trained");
      }
    }
    const auto group_row = [&](int group) -> std::ptrdiff_t {
      for (std::size_t i = 0; i < group_labels.size(); ++i) {
        if (group_labels[i] == group) return static_cast<std::ptrdiff_t>(i);
      }
      return -1;
    };

    // Level 2: every trained level over the whole bucket (matching the
    // scalar scored path); the predicted group's column drives the verdict.
    for (const auto& [group, level] : instruction_levels_) {
      const std::ptrdiff_t grow = group_row(group);
      if (level.trivial) {
        const auto cls = static_cast<std::size_t>(level.only_label);
        const std::size_t pi = post_index(cls);
        for (std::size_t p = 0; p < n; ++p) {
          Disassembly& o = out[idx[p]];
          o.log_posterior[pi] = grow < 0 ? -kInf : group_logp(grow, p);
          if (o.group == group) o.class_idx = cls;
        }
        continue;
      }
      const linalg::Matrix s =
          level.classifier->class_scores_batch(level_feats(level, all));
      const std::vector<int>& labels = level.classifier->score_labels();
      std::vector<std::size_t> post_idx(labels.size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        post_idx[i] = post_index(static_cast<std::size_t>(labels[i]));
      }
      linalg::Vector col(s.rows());
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t c = 0; c < s.rows(); ++c) col[c] = s(c, p);
        Disassembly& o = out[idx[p]];
        if (o.group == group) {
          const ml::ScoredPrediction c = ml::scored_from_scores(col, labels);
          o.class_idx = static_cast<std::size_t>(c.label);
          gate(o, level, c, /*fatal=*/true);
        }
        const double g_lp = grow < 0 ? -kInf : group_logp(grow, p);
        const linalg::Vector lp = log_softmax(col);
        for (std::size_t i = 0; i < labels.size(); ++i) {
          o.log_posterior[post_idx[i]] = g_lp + lp[i];
        }
      }
    }

    // Level 3: identical to classify_batch -- operand posteriors are out of
    // scope, so the plain scored-prediction batch suffices.
    const auto predict_batch = [&](const Level& level,
                                   std::span<const std::size_t> subset) {
      if (level.trivial) {
        return std::vector<ml::ScoredPrediction>(
            subset.size(), ml::ScoredPrediction{level.only_label, kInf, kInf});
      }
      if (level.classifier == nullptr) throw std::runtime_error("level not trained");
      return level.classifier->predict_scored_batch(level_feats(level, subset));
    };
    const auto predict_registers = [&](const Level* level, bool rd) {
      if (level == nullptr) return;
      std::vector<std::size_t> subset;
      for (std::size_t p = 0; p < n; ++p) {
        const std::size_t class_idx = out[idx[p]].class_idx;
        if (rd ? avr::class_uses_rd(class_idx) : avr::class_uses_rr(class_idx)) {
          subset.push_back(p);
        }
      }
      if (subset.empty()) return;
      const std::vector<ml::ScoredPrediction> r = predict_batch(*level, subset);
      for (std::size_t i = 0; i < subset.size(); ++i) {
        Disassembly& o = out[idx[subset[i]]];
        if (rd) {
          o.rd = static_cast<std::uint8_t>(r[i].label);
        } else {
          o.rr = static_cast<std::uint8_t>(r[i].label);
        }
        gate(o, *level, r[i], /*fatal=*/false);
      }
    };
    predict_registers(rd_level_.get(), /*rd=*/true);
    predict_registers(rr_level_.get(), /*rd=*/false);
  }
  return out;
}

}  // namespace sidis::core

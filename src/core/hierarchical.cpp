#include "core/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>

#include "avr/isa.hpp"

namespace sidis::core {

namespace {

/// A level with one distinct label needs no classifier -- e.g. the group
/// level when every profiled class lives in the same group.
bool single_label(const std::vector<int>& labels) {
  return std::all_of(labels.begin(), labels.end(),
                     [&](int l) { return l == labels.front(); });
}

}  // namespace

avr::Instruction Disassembly::to_instruction() const {
  const avr::ClassSpec& spec = avr::instruction_classes().at(class_idx);
  avr::Instruction in;
  in.mnemonic = spec.mnemonic;
  in.mode = spec.mode;
  if (rd) in.rd = *rd;
  if (rr) in.rr = *rr;
  return in;
}

std::string Disassembly::text() const { return avr::to_string(to_instruction()); }

HierarchicalDisassembler::Level HierarchicalDisassembler::train_level(
    const features::LabeledTraces& input, const HierarchicalConfig& config,
    std::size_t components) {
  Level level;
  level.components = components;
  if (single_label(input.labels)) {
    level.trivial = true;
    level.only_label = input.labels.front();
    return level;
  }
  level.pipeline = features::FeaturePipeline::fit(input, config.pipeline);
  const ml::Dataset train = level.pipeline.transform(input, components);
  level.classifier = ml::make_classifier(config.classifier, config.factory);
  level.classifier->fit(train);
  return level;
}

HierarchicalDisassembler::Level HierarchicalDisassembler::train_level_precomputed(
    const std::vector<const features::FeaturePipeline::ClassData*>& data,
    const features::LabeledTraces& input, const HierarchicalConfig& config,
    std::size_t components) {
  Level level;
  level.components = components;
  if (single_label(input.labels)) {
    level.trivial = true;
    level.only_label = input.labels.front();
    return level;
  }
  level.pipeline = features::FeaturePipeline::fit(data, config.pipeline);
  const ml::Dataset train = level.pipeline.transform(input, components);
  level.classifier = ml::make_classifier(config.classifier, config.factory);
  level.classifier->fit(train);
  return level;
}

int HierarchicalDisassembler::predict_level(const Level& level,
                                            const sim::Trace& trace,
                                            std::size_t components) {
  if (level.trivial) return level.only_label;
  if (level.classifier == nullptr) throw std::runtime_error("level not trained");
  const std::size_t k = components == SIZE_MAX ? level.components : components;
  // When the caller overrides the component count we must also truncate what
  // the classifier saw at fit time, so overrides only make sense on levels
  // evaluated standalone; the benches refit per sweep point instead.
  return level.classifier->predict(level.pipeline.transform(trace, k));
}

HierarchicalDisassembler HierarchicalDisassembler::train(const ProfilingData& data,
                                                         HierarchicalConfig config) {
  if (data.classes.empty()) {
    throw std::invalid_argument("HierarchicalDisassembler::train: no profiled classes");
  }
  HierarchicalDisassembler d;
  d.config_ = config;

  // Levels 1 and 2 see the same traces (level 1 with group labels, level 2
  // with class labels), so the expensive per-class CWT moment/mask pass is
  // computed once and shared.
  features::LabeledTraces class_input;
  features::LabeledTraces group_input;
  std::map<int, features::LabeledTraces> per_group;
  for (const auto& [class_idx, traces] : data.classes) {
    if (traces.empty()) {
      throw std::invalid_argument("HierarchicalDisassembler::train: empty class corpus");
    }
    const int group = avr::group_of_class(class_idx);
    class_input.labels.push_back(static_cast<int>(class_idx));
    class_input.sets.push_back(&traces);
    group_input.labels.push_back(group);
    group_input.sets.push_back(&traces);
    per_group[group].labels.push_back(static_cast<int>(class_idx));
    per_group[group].sets.push_back(&traces);
  }
  const std::vector<features::FeaturePipeline::ClassData> precomputed =
      features::FeaturePipeline::precompute(class_input, config.pipeline);
  std::map<std::size_t, const features::FeaturePipeline::ClassData*> by_class;
  for (const auto& cd : precomputed) {
    by_class[static_cast<std::size_t>(cd.label)] = &cd;
  }

  // Level 1: group classification over all profiled classes.  The pipeline
  // fit only consumes moments/masks/traces, so class-level precompute data
  // serves directly; the classifier pools samples by the group labels.
  {
    std::vector<const features::FeaturePipeline::ClassData*> all;
    for (const auto& cd : precomputed) all.push_back(&cd);
    d.group_level_ =
        train_level_precomputed(all, group_input, config, config.group_components);
  }

  // Level 2: one model per group with at least 2 profiled classes.
  for (const auto& [group, input] : per_group) {
    std::vector<const features::FeaturePipeline::ClassData*> subset;
    for (int label : input.labels) {
      subset.push_back(by_class.at(static_cast<std::size_t>(label)));
    }
    d.instruction_levels_[group] = train_level_precomputed(
        subset, input, config, config.instruction_components);
  }

  // Level 3: register recovery.
  const auto train_registers = [&](const std::map<std::uint8_t, sim::TraceSet>& sets)
      -> std::unique_ptr<Level> {
    if (sets.size() < 2) return nullptr;
    features::LabeledTraces input;
    for (const auto& [reg, traces] : sets) {
      input.labels.push_back(static_cast<int>(reg));
      input.sets.push_back(&traces);
    }
    return std::make_unique<Level>(
        train_level(input, config, config.register_components));
  };
  d.rd_level_ = train_registers(data.rd_classes);
  d.rr_level_ = train_registers(data.rr_classes);
  return d;
}

int HierarchicalDisassembler::classify_group(const sim::Trace& trace,
                                             std::size_t components) const {
  return predict_level(group_level_, trace, components);
}

std::size_t HierarchicalDisassembler::classify_within_group(
    int group, const sim::Trace& trace, std::size_t components) const {
  const auto it = instruction_levels_.find(group);
  if (it == instruction_levels_.end()) {
    throw std::invalid_argument("classify_within_group: group not trained");
  }
  return static_cast<std::size_t>(predict_level(it->second, trace, components));
}

std::uint8_t HierarchicalDisassembler::classify_rd(const sim::Trace& trace,
                                                   std::size_t components) const {
  if (rd_level_ == nullptr) throw std::runtime_error("Rd level not trained");
  return static_cast<std::uint8_t>(predict_level(*rd_level_, trace, components));
}

std::uint8_t HierarchicalDisassembler::classify_rr(const sim::Trace& trace,
                                                   std::size_t components) const {
  if (rr_level_ == nullptr) throw std::runtime_error("Rr level not trained");
  return static_cast<std::uint8_t>(predict_level(*rr_level_, trace, components));
}

Disassembly HierarchicalDisassembler::classify(const sim::Trace& trace) const {
  Disassembly out;
  out.group = classify_group(trace);
  out.class_idx = classify_within_group(out.group, trace);
  if (avr::class_uses_rd(out.class_idx) && rd_level_ != nullptr) {
    out.rd = classify_rd(trace);
  }
  if (avr::class_uses_rr(out.class_idx) && rr_level_ != nullptr) {
    out.rr = classify_rr(trace);
  }
  return out;
}

}  // namespace sidis::core

#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "avr/grouping.hpp"

namespace sidis::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double logsumexp(const std::vector<double>& v) {
  double m = kNegInf;
  for (double x : v) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

void log_softmax_inplace(std::vector<double>& v) {
  const double z = logsumexp(v);
  if (!std::isfinite(z)) return;  // all -inf: leave as-is
  for (double& x : v) x -= z;
}

/// w_p * a + w_e * b with 0 * (-inf) treated as "channel not consulted".
double weighted_sum(const LevelFusion& f, double a, double b) {
  double s = 0.0;
  if (f.power_weight != 0.0) s += f.power_weight * a;
  if (f.em_weight != 0.0) s += f.em_weight * b;
  return s;
}

}  // namespace

std::string to_string(FusionMode mode) {
  return mode == FusionMode::kScore ? "score" : "feature";
}

FusedDisassembler::FusedDisassembler(
    std::shared_ptr<const HierarchicalDisassembler> power,
    std::shared_ptr<const HierarchicalDisassembler> em, LevelFusion group,
    LevelFusion instruction)
    : power_(std::move(power)),
      em_(std::move(em)),
      group_(group),
      instruction_(instruction) {
  if (power_ == nullptr) {
    throw std::invalid_argument("FusedDisassembler: power model is null");
  }
  if (em_ != nullptr &&
      em_->posterior_classes() != power_->posterior_classes()) {
    throw std::invalid_argument(
        "FusedDisassembler: channel models disagree on the class support");
  }
  rebuild_support();
}

void FusedDisassembler::rebuild_support() {
  support_.groups.clear();
  support_.members.clear();
  const std::vector<std::size_t>& classes = power_->posterior_classes();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const int g = avr::group_of_class(classes[i]);
    const auto it = std::find(support_.groups.begin(), support_.groups.end(), g);
    std::size_t gi;
    if (it == support_.groups.end()) {
      support_.groups.push_back(g);
      support_.members.emplace_back();
      gi = support_.groups.size() - 1;
    } else {
      gi = static_cast<std::size_t>(it - support_.groups.begin());
    }
    support_.members[gi].push_back(i);
  }
}

const std::vector<std::size_t>& FusedDisassembler::posterior_classes() const {
  return power_->posterior_classes();
}

bool FusedDisassembler::degenerate_to(sim::Channel channel) const {
  if (group_.mode != FusionMode::kScore ||
      instruction_.mode != FusionMode::kScore) {
    return false;
  }
  if (channel == sim::Channel::kPower) {
    return group_.em_weight == 0.0 && instruction_.em_weight == 0.0;
  }
  return group_.power_weight == 0.0 && instruction_.power_weight == 0.0;
}

void FusedDisassembler::rebind_power(
    std::shared_ptr<const HierarchicalDisassembler> power) {
  if (power == nullptr) {
    throw std::invalid_argument("rebind_power: model is null");
  }
  if (power->posterior_classes() != power_->posterior_classes()) {
    throw std::invalid_argument("rebind_power: class support changed");
  }
  power_ = std::move(power);
  // The joint heads were fit on the old power pipelines' output space.
  group_head_.reset();
  instruction_heads_.clear();
}

void FusedDisassembler::rebind_em(
    std::shared_ptr<const HierarchicalDisassembler> em) {
  if (em != nullptr && em->posterior_classes() != power_->posterior_classes()) {
    throw std::invalid_argument("rebind_em: class support changed");
  }
  em_ = std::move(em);
  group_head_.reset();
  instruction_heads_.clear();
}

linalg::Vector FusedDisassembler::joint_features(int group,
                                                 const sim::Trace& pview,
                                                 const sim::Trace& eview) const {
  const auto level_of = [group](const HierarchicalDisassembler& model)
      -> const HierarchicalDisassembler::Level* {
    if (group < 0) return &model.group_level_;
    const auto it = model.instruction_levels_.find(group);
    return it == model.instruction_levels_.end() ? nullptr : &it->second;
  };
  const HierarchicalDisassembler::Level* pl = level_of(*power_);
  const HierarchicalDisassembler::Level* el = level_of(*em_);
  if (pl == nullptr || el == nullptr || pl->trivial || el->trivial) {
    throw std::logic_error("joint_features: level has no pipeline");
  }
  const linalg::Vector pf = pl->pipeline.transform(pview, pl->components);
  const linalg::Vector ef = el->pipeline.transform(eview, el->components);
  linalg::Vector joint(pf.size() + ef.size());
  std::copy(pf.begin(), pf.end(), joint.begin());
  std::copy(ef.begin(), ef.end(),
            joint.begin() + static_cast<std::ptrdiff_t>(pf.size()));
  return joint;
}

void FusedDisassembler::train_feature_heads(
    const std::map<std::size_t, sim::TraceSet>& classes) {
  if (em_ == nullptr) {
    throw std::logic_error("train_feature_heads: no EM channel model");
  }
  group_head_.reset();
  instruction_heads_.clear();

  // Per-trace joint features per level, gathered once.
  struct LevelRows {
    std::vector<linalg::Vector> x;
    std::vector<int> y;
  };
  LevelRows group_rows;
  std::map<int, LevelRows> instr_rows;

  const bool group_trained =
      !power_->group_level_.trivial && !em_->group_level_.trivial;
  for (const auto& [cls, traces] : classes) {
    const int g = avr::group_of_class(cls);
    const bool instr_trained =
        power_->instruction_levels_.count(g) != 0 &&
        em_->instruction_levels_.count(g) != 0 &&
        !power_->instruction_levels_.at(g).trivial &&
        !em_->instruction_levels_.at(g).trivial;
    for (const sim::Trace& t : traces) {
      if (!t.has_em()) {
        throw std::invalid_argument(
            "train_feature_heads: corpus trace lacks an EM window");
      }
      const sim::Trace pview = sim::channel_view(t, sim::Channel::kPower);
      const sim::Trace eview = sim::channel_view(t, sim::Channel::kEm);
      if (group_trained) {
        group_rows.x.push_back(joint_features(-1, pview, eview));
        group_rows.y.push_back(g);
      }
      if (instr_trained) {
        LevelRows& rows = instr_rows[g];
        rows.x.push_back(joint_features(g, pview, eview));
        rows.y.push_back(static_cast<int>(cls));
      }
    }
  }

  const auto fit_head = [](LevelRows& rows) {
    ml::Dataset train;
    train.x = linalg::Matrix(rows.x.size(), rows.x.front().size());
    for (std::size_t r = 0; r < rows.x.size(); ++r) {
      for (std::size_t c = 0; c < rows.x[r].size(); ++c) {
        train.x(r, c) = rows.x[r][c];
      }
    }
    train.y = std::move(rows.y);
    auto head = std::make_unique<ml::Qda>();
    head->fit(train);
    return head;
  };

  // A head is only useful when its level actually discriminates (>= 2
  // labels present in the corpus).
  const auto distinct = [](const std::vector<int>& y) {
    for (std::size_t i = 1; i < y.size(); ++i) {
      if (y[i] != y.front()) return true;
    }
    return false;
  };
  if (group_trained && !group_rows.y.empty() && distinct(group_rows.y)) {
    group_head_ = fit_head(group_rows);
  }
  for (auto& [g, rows] : instr_rows) {
    if (!rows.y.empty() && distinct(rows.y)) {
      instruction_heads_[g] = fit_head(rows);
    }
  }
}

Disassembly FusedDisassembler::degrade_to(const Disassembly& survivor,
                                          const Disassembly& rejected) {
  (void)rejected;
  Disassembly out = survivor;
  out.verdict = std::max(out.verdict, Verdict::kDegraded);
  return out;
}

Disassembly FusedDisassembler::fuse(const sim::Trace& pview,
                                    const sim::Trace& eview,
                                    const Disassembly& p,
                                    const Disassembly& e) const {
  const std::vector<std::size_t>& classes = power_->posterior_classes();
  const std::size_t ngroups = support_.groups.size();

  // Factor each channel's composed posterior back into group marginals.
  std::vector<double> gp_p(ngroups, kNegInf), gp_e(ngroups, kNegInf);
  std::vector<double> scratch;
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    scratch.clear();
    for (std::size_t m : support_.members[gi]) scratch.push_back(p.log_posterior[m]);
    gp_p[gi] = logsumexp(scratch);
    scratch.clear();
    for (std::size_t m : support_.members[gi]) scratch.push_back(e.log_posterior[m]);
    gp_e[gi] = logsumexp(scratch);
  }

  // Fused group posterior.
  std::vector<double> g_lp(ngroups, kNegInf);
  if (group_.mode == FusionMode::kFeature && group_head_ != nullptr) {
    const linalg::Vector scores = group_head_->class_scores(joint_features(-1, pview, eview));
    const std::vector<int>& labels = group_head_->score_labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const auto it =
          std::find(support_.groups.begin(), support_.groups.end(), labels[i]);
      if (it != support_.groups.end()) {
        g_lp[static_cast<std::size_t>(it - support_.groups.begin())] = scores[i];
      }
    }
  } else {
    for (std::size_t gi = 0; gi < ngroups; ++gi) {
      g_lp[gi] = weighted_sum(group_, gp_p[gi], gp_e[gi]);
    }
  }
  log_softmax_inplace(g_lp);
  std::size_t best_g = 0;
  for (std::size_t gi = 1; gi < ngroups; ++gi) {
    if (g_lp[gi] > g_lp[best_g]) best_g = gi;
  }

  // Fused within-group conditionals, composed into the joint posterior.
  linalg::Vector fused_lp(classes.size());
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    const std::vector<std::size_t>& mem = support_.members[gi];
    std::vector<double> cond(mem.size(), kNegInf);
    const ml::Qda* head = nullptr;
    if (instruction_.mode == FusionMode::kFeature) {
      const auto it = instruction_heads_.find(support_.groups[gi]);
      if (it != instruction_heads_.end()) head = it->second.get();
    }
    if (head != nullptr) {
      const linalg::Vector scores =
          head->class_scores(joint_features(support_.groups[gi], pview, eview));
      const std::vector<int>& labels = head->score_labels();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        for (std::size_t k = 0; k < mem.size(); ++k) {
          if (classes[mem[k]] == static_cast<std::size_t>(labels[i])) {
            cond[k] = scores[i];
            break;
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < mem.size(); ++k) {
        double cp = p.log_posterior[mem[k]] - gp_p[gi];
        double ce = e.log_posterior[mem[k]] - gp_e[gi];
        if (std::isnan(cp)) cp = 0.0;
        if (std::isnan(ce)) ce = 0.0;
        cond[k] = weighted_sum(instruction_, cp, ce);
      }
    }
    log_softmax_inplace(cond);
    for (std::size_t k = 0; k < mem.size(); ++k) {
      fused_lp[mem[k]] = g_lp[gi] + cond[k];
    }
  }

  std::size_t best_idx = support_.members[best_g].front();
  for (std::size_t m : support_.members[best_g]) {
    if (fused_lp[m] > fused_lp[best_idx]) best_idx = m;
  }

  Disassembly out;
  out.group = support_.groups[best_g];
  out.class_idx = classes[best_idx];
  out.verdict = std::max(p.verdict, e.verdict);
  out.margin_headroom = std::min(p.margin_headroom, e.margin_headroom);
  out.score_headroom = std::min(p.score_headroom, e.score_headroom);
  out.log_posterior = std::move(fused_lp);

  // Operand recovery stays on the power channel (the register-file row
  // drivers couple into the shunt, not reliably into a mispositioned loop).
  if (avr::class_uses_rd(out.class_idx)) {
    if (out.class_idx == p.class_idx && p.rd) {
      out.rd = p.rd;
    } else if (power_->rd_level_ != nullptr) {
      out.rd = power_->classify_rd(pview);
    }
  }
  if (avr::class_uses_rr(out.class_idx)) {
    if (out.class_idx == p.class_idx && p.rr) {
      out.rr = p.rr;
    } else if (power_->rr_level_ != nullptr) {
      out.rr = power_->classify_rr(pview);
    }
  }
  return out;
}

Disassembly FusedDisassembler::fuse_window(const sim::Trace& pview,
                                           const sim::Trace& eview,
                                           const Disassembly& p,
                                           const Disassembly& e) const {
  if (!p.accepted() && !e.accepted()) {
    Disassembly out = p;
    out.margin_headroom = std::min(p.margin_headroom, e.margin_headroom);
    out.score_headroom = std::min(p.score_headroom, e.score_headroom);
    return out;
  }
  if (!e.accepted()) return degrade_to(p, e);
  if (!p.accepted()) return degrade_to(e, p);
  return fuse(pview, eview, p, e);
}

Disassembly FusedDisassembler::classify_scored(const sim::Trace& paired) const {
  if (power_ == nullptr) throw std::runtime_error("FusedDisassembler: empty");
  if (em_ == nullptr || degenerate_to(sim::Channel::kPower)) {
    return power_->classify_scored(sim::channel_view(paired, sim::Channel::kPower));
  }
  if (!paired.has_em()) {
    // The modality this deployment calibrated for is missing: serve the
    // power-only result, flagged so the operator sees the blind spot.
    Disassembly out =
        power_->classify_scored(sim::channel_view(paired, sim::Channel::kPower));
    out.verdict = std::max(out.verdict, Verdict::kDegraded);
    return out;
  }
  if (degenerate_to(sim::Channel::kEm)) {
    return em_->classify_scored(sim::channel_view(paired, sim::Channel::kEm));
  }
  const sim::Trace pview = sim::channel_view(paired, sim::Channel::kPower);
  const sim::Trace eview = sim::channel_view(paired, sim::Channel::kEm);
  return fuse_window(pview, eview, power_->classify_scored(pview),
                     em_->classify_scored(eview));
}

Disassembly FusedDisassembler::classify(const sim::Trace& paired) const {
  if (power_ == nullptr) throw std::runtime_error("FusedDisassembler: empty");
  if (em_ == nullptr || degenerate_to(sim::Channel::kPower)) {
    return power_->classify(sim::channel_view(paired, sim::Channel::kPower));
  }
  if (!paired.has_em()) {
    Disassembly out =
        power_->classify(sim::channel_view(paired, sim::Channel::kPower));
    out.verdict = std::max(out.verdict, Verdict::kDegraded);
    return out;
  }
  if (degenerate_to(sim::Channel::kEm)) {
    return em_->classify(sim::channel_view(paired, sim::Channel::kEm));
  }
  // Non-degenerate fusion is defined on the channel posteriors, so the plain
  // and scored paths are the same computation (the posterior rides along).
  return classify_scored(paired);
}

namespace {

/// Index partition of a batch by EM-window presence.
struct EmPartition {
  std::vector<std::size_t> with_em;
  std::vector<std::size_t> without_em;
};

EmPartition partition_by_em(const sim::TraceSet& traces) {
  EmPartition part;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    (traces[i].has_em() ? part.with_em : part.without_em).push_back(i);
  }
  return part;
}

sim::TraceSet gather_views(const sim::TraceSet& traces,
                           const std::vector<std::size_t>& idx,
                           sim::Channel channel) {
  sim::TraceSet out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(sim::channel_view(traces[i], channel));
  return out;
}

}  // namespace

std::vector<Disassembly> FusedDisassembler::classify_batch(
    const sim::TraceSet& traces) const {
  if (power_ == nullptr) throw std::runtime_error("FusedDisassembler: empty");
  if (em_ == nullptr || degenerate_to(sim::Channel::kPower)) {
    return power_->classify_batch(sim::channel_views(traces, sim::Channel::kPower));
  }
  std::vector<Disassembly> out(traces.size());
  const EmPartition part = partition_by_em(traces);
  if (!part.without_em.empty()) {
    const std::vector<Disassembly> sub = power_->classify_batch(
        gather_views(traces, part.without_em, sim::Channel::kPower));
    for (std::size_t k = 0; k < part.without_em.size(); ++k) {
      out[part.without_em[k]] = sub[k];
      out[part.without_em[k]].verdict =
          std::max(out[part.without_em[k]].verdict, Verdict::kDegraded);
    }
  }
  if (part.with_em.empty()) return out;
  if (degenerate_to(sim::Channel::kEm)) {
    const std::vector<Disassembly> sub = em_->classify_batch(
        gather_views(traces, part.with_em, sim::Channel::kEm));
    for (std::size_t k = 0; k < part.with_em.size(); ++k) {
      out[part.with_em[k]] = sub[k];
    }
    return out;
  }
  const sim::TraceSet pviews =
      gather_views(traces, part.with_em, sim::Channel::kPower);
  const sim::TraceSet eviews =
      gather_views(traces, part.with_em, sim::Channel::kEm);
  const std::vector<Disassembly> p = power_->classify_batch_scored(pviews);
  const std::vector<Disassembly> e = em_->classify_batch_scored(eviews);
  for (std::size_t k = 0; k < part.with_em.size(); ++k) {
    out[part.with_em[k]] = fuse_window(pviews[k], eviews[k], p[k], e[k]);
  }
  return out;
}

std::vector<Disassembly> FusedDisassembler::classify_batch_scored(
    const sim::TraceSet& traces) const {
  if (power_ == nullptr) throw std::runtime_error("FusedDisassembler: empty");
  if (em_ == nullptr || degenerate_to(sim::Channel::kPower)) {
    return power_->classify_batch_scored(
        sim::channel_views(traces, sim::Channel::kPower));
  }
  std::vector<Disassembly> out(traces.size());
  const EmPartition part = partition_by_em(traces);
  if (!part.without_em.empty()) {
    const std::vector<Disassembly> sub = power_->classify_batch_scored(
        gather_views(traces, part.without_em, sim::Channel::kPower));
    for (std::size_t k = 0; k < part.without_em.size(); ++k) {
      out[part.without_em[k]] = sub[k];
      out[part.without_em[k]].verdict =
          std::max(out[part.without_em[k]].verdict, Verdict::kDegraded);
    }
  }
  if (part.with_em.empty()) return out;
  if (degenerate_to(sim::Channel::kEm)) {
    const std::vector<Disassembly> sub = em_->classify_batch_scored(
        gather_views(traces, part.with_em, sim::Channel::kEm));
    for (std::size_t k = 0; k < part.with_em.size(); ++k) {
      out[part.with_em[k]] = sub[k];
    }
    return out;
  }
  const sim::TraceSet pviews =
      gather_views(traces, part.with_em, sim::Channel::kPower);
  const sim::TraceSet eviews =
      gather_views(traces, part.with_em, sim::Channel::kEm);
  const std::vector<Disassembly> p = power_->classify_batch_scored(pviews);
  const std::vector<Disassembly> e = em_->classify_batch_scored(eviews);
  for (std::size_t k = 0; k < part.with_em.size(); ++k) {
    out[part.with_em[k]] = fuse_window(pviews[k], eviews[k], p[k], e[k]);
  }
  return out;
}

double FusedDisassembler::calibrate_fusion(const sim::TraceSet& heldout,
                                           const FusionCalibration& cal) {
  if (em_ == nullptr) {
    throw std::logic_error("calibrate_fusion: no EM channel model");
  }
  if (heldout.empty()) {
    throw std::invalid_argument("calibrate_fusion: empty held-out set");
  }
  for (const sim::Trace& t : heldout) {
    if (!t.has_em()) {
      throw std::invalid_argument("calibrate_fusion: held-out trace lacks EM");
    }
  }
  // Channel posteriors once; every candidate only re-mixes them.
  const sim::TraceSet pviews = sim::channel_views(heldout, sim::Channel::kPower);
  const sim::TraceSet eviews = sim::channel_views(heldout, sim::Channel::kEm);
  const std::vector<Disassembly> p = power_->classify_batch_scored(pviews);
  const std::vector<Disassembly> e = em_->classify_batch_scored(eviews);

  std::vector<LevelFusion> group_candidates, instr_candidates;
  for (double w : cal.weight_grid) {
    group_candidates.push_back({FusionMode::kScore, w, 1.0 - w});
    instr_candidates.push_back({FusionMode::kScore, w, 1.0 - w});
  }
  if (cal.try_feature && group_head_ != nullptr) {
    group_candidates.push_back({FusionMode::kFeature, 0.5, 0.5});
  }
  if (cal.try_feature && !instruction_heads_.empty()) {
    instr_candidates.push_back({FusionMode::kFeature, 0.5, 0.5});
  }

  LevelFusion best_group = group_candidates.front();
  LevelFusion best_instr = instr_candidates.front();
  std::size_t best_hits = 0;
  bool first = true;
  for (const LevelFusion& g : group_candidates) {
    for (const LevelFusion& i : instr_candidates) {
      group_ = g;
      instruction_ = i;
      std::size_t hits = 0;
      for (std::size_t k = 0; k < heldout.size(); ++k) {
        // Score each candidate exactly as it would serve: the degenerate
        // corners return the channel's own prediction verbatim.
        std::size_t pred;
        if (degenerate_to(sim::Channel::kPower)) {
          pred = p[k].class_idx;
        } else if (degenerate_to(sim::Channel::kEm)) {
          pred = e[k].class_idx;
        } else {
          pred = fuse_window(pviews[k], eviews[k], p[k], e[k]).class_idx;
        }
        if (pred == heldout[k].meta.class_idx) ++hits;
      }
      if (first || hits > best_hits) {
        best_hits = hits;
        best_group = g;
        best_instr = i;
        first = false;
      }
    }
  }
  group_ = best_group;
  instruction_ = best_instr;
  return static_cast<double>(best_hits) / static_cast<double>(heldout.size());
}

}  // namespace sidis::core

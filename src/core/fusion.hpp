// Multimodal power+EM fusion over the hierarchical disassembler.
//
// The paper's follow-up line of work (Bai/Park/Forte, arXiv 2412.07671)
// shows that a second side channel recovers accuracy the power channel alone
// cannot reach and keeps the monitor serviceable when one modality degrades.
// This layer composes two independently trained single-channel
// HierarchicalDisassembler instances -- one fed the supply-current window,
// one the aligned EM-probe window (sim::channel_view) -- two ways, selected
// per hierarchy level by held-out calibration:
//
//   * score-level fusion: each channel's composed per-class log-posterior is
//     factored back into its group and within-group conditional parts, and
//     the factors are mixed with per-level channel reliability weights
//     (w_p, w_e):  s(g)    = w_p log P_p(g|x)  + w_e log P_e(g|x)
//                  s(c|g)  = w_p log P_p(c|g,x) + w_e log P_e(c|g,x)
//     renormalized per level -- a weighted product-of-experts whose (1, 0)
//     corner is *bit-identical* to the power-only classifier;
//   * feature-level fusion: the two channels' fitted per-level pipelines run
//     side by side and their output vectors concatenate into one joint
//     vector scored by a jointly trained QDA head for that level, replacing
//     the score mix where the channels' errors are correlated enough that
//     mixing posteriors cannot help.
//
// Degradation is graceful by construction: a trace with no EM window, or a
// window one channel's reject gates throw out, falls back to the surviving
// channel's full result, flagged kDegraded.  Reject verdicts and headrooms
// always fold across both channels (worst headroom, worst verdict), so the
// fused operating point is never less conservative than the channels'.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"
#include "ml/discriminant.hpp"

namespace sidis::core {

/// How one hierarchy level combines the two channels.
enum class FusionMode : std::uint8_t {
  kScore = 0,    ///< weighted log-posterior mix of the channel models
  kFeature = 1,  ///< joint QDA head over concatenated per-channel features
};

std::string to_string(FusionMode mode);

/// Per-level fusion selection: the mode and, for score fusion, the channel
/// reliability weights.  Defaults to power-only score fusion.
struct LevelFusion {
  FusionMode mode = FusionMode::kScore;
  double power_weight = 1.0;
  double em_weight = 0.0;
};

/// calibrate_fusion() search space.
struct FusionCalibration {
  /// Power-weight candidates for score fusion (em weight = 1 - w); ordered,
  /// because ties resolve to the earliest candidate.
  std::vector<double> weight_grid = {1.0, 0.75, 0.5, 0.25, 0.0};
  /// Also consider the joint feature heads (when trained).
  bool try_feature = true;
};

class FusedDisassembler {
 public:
  FusedDisassembler() = default;

  /// Composes two trained channel models.  `em` may be null (power-only
  /// deployment; every classify degenerates to the power model).  Both
  /// models must be profiled on the same class support.  Throws
  /// std::invalid_argument on a null power model or mismatched supports.
  FusedDisassembler(std::shared_ptr<const HierarchicalDisassembler> power,
                    std::shared_ptr<const HierarchicalDisassembler> em,
                    LevelFusion group = {}, LevelFusion instruction = {});

  /// Trains the joint feature heads (group level + one per instruction
  /// group) from a paired profiling corpus: each trace's power and EM views
  /// run through the respective channel's fitted level pipeline and the
  /// concatenated vectors fit a QDA per level.  Levels trivial in either
  /// channel get no head.  Requires every trace to carry an EM window.
  void train_feature_heads(const std::map<std::size_t, sim::TraceSet>& classes);

  /// Held-out per-level selection: grid-searches (mode, weights) for the
  /// group and instruction levels jointly, maximizing final-class accuracy
  /// on `heldout` (paired traces labeled via meta.class_idx).  Deterministic:
  /// ties resolve to the earliest candidate (score fusion, power-heavy
  /// first).  Returns the achieved held-out accuracy.
  double calibrate_fusion(const sim::TraceSet& heldout,
                          const FusionCalibration& cal = {});

  /// Fused classification of one paired window.  Power-only degenerate
  /// weights, a missing EM model, or a trace without an EM window reproduce
  /// the power model's result bit for bit (and symmetrically for EM-only
  /// weights).  Otherwise both channels run and the results fuse per the
  /// level selections; one rejected channel degrades to the other, flagged
  /// kDegraded.  Thread-safe like HierarchicalDisassembler::classify.
  Disassembly classify(const sim::Trace& paired) const;

  /// classify() with the fused per-class log-posterior kept.  On the
  /// non-degenerate fusion path classify() and classify_scored() are the
  /// same computation (fusion is defined on the channel posteriors), so both
  /// carry the posterior there.
  Disassembly classify_scored(const sim::Trace& paired) const;

  /// Batched fusion, bit-identical to the scalar calls per window: the
  /// channel models run their lane-vectorized classify_batch_scored over the
  /// channel views and the per-window fusion math is shared with the scalar
  /// path.  Degenerate single-channel weights delegate to that channel's
  /// classify_batch (preserving the plain-path bit-identity guarantee).
  std::vector<Disassembly> classify_batch(const sim::TraceSet& traces) const;
  std::vector<Disassembly> classify_batch_scored(const sim::TraceSet& traces) const;

  /// Rebinds one channel to a maintained model (renormalized / refit by the
  /// RecalibrationScheduler) while the other keeps serving.  The replacement
  /// must keep the class support; joint feature heads are invalidated when
  /// the corresponding channel pipelines changed, so deployments that
  /// hot-swap channels should run score fusion (the calibrated default).
  void rebind_power(std::shared_ptr<const HierarchicalDisassembler> power);
  void rebind_em(std::shared_ptr<const HierarchicalDisassembler> em);

  const std::shared_ptr<const HierarchicalDisassembler>& power_model() const {
    return power_;
  }
  const std::shared_ptr<const HierarchicalDisassembler>& em_model() const {
    return em_;
  }
  const LevelFusion& group_fusion() const { return group_; }
  const LevelFusion& instruction_fusion() const { return instruction_; }
  void set_group_fusion(LevelFusion f) { group_ = f; }
  void set_instruction_fusion(LevelFusion f) { instruction_ = f; }
  bool has_feature_heads() const {
    return group_head_ != nullptr || !instruction_heads_.empty();
  }

  /// Shared posterior support (identical across channels by construction).
  const std::vector<std::size_t>& posterior_classes() const;

  /// True when every level runs score fusion with all weight on `channel`.
  bool degenerate_to(sim::Channel channel) const;

 private:
  friend void save_fused_disassembler(std::ostream& os,
                                      const FusedDisassembler& model);
  friend FusedDisassembler load_fused_disassembler(std::istream& is);

  /// Group structure of the posterior support: ascending group ids and, per
  /// group, the member indices into posterior_classes().
  struct GroupSupport {
    std::vector<int> groups;
    std::vector<std::vector<std::size_t>> members;
  };

  void rebuild_support();
  /// Joint feature vector of one paired window at one level (power part
  /// first).  `group` < 0 addresses the group level.
  linalg::Vector joint_features(int group, const sim::Trace& pview,
                                const sim::Trace& eview) const;
  /// The fusion math on two completed channel results (non-degenerate,
  /// both channels accepted).  `pview`/`eview` feed the feature heads.
  Disassembly fuse(const sim::Trace& pview, const sim::Trace& eview,
                   const Disassembly& p, const Disassembly& e) const;
  /// Full per-window combination: both-rejected fold, one-channel
  /// degradation, else fuse().  Shared by the scalar, batch and calibration
  /// paths so they stay bit-identical by construction.
  Disassembly fuse_window(const sim::Trace& pview, const sim::Trace& eview,
                          const Disassembly& p, const Disassembly& e) const;
  /// Degrade to one surviving channel's result (other channel rejected).
  static Disassembly degrade_to(const Disassembly& survivor,
                                const Disassembly& rejected);

  std::shared_ptr<const HierarchicalDisassembler> power_;
  std::shared_ptr<const HierarchicalDisassembler> em_;
  LevelFusion group_;
  LevelFusion instruction_;
  std::unique_ptr<ml::Qda> group_head_;
  std::map<int, std::unique_ptr<ml::Qda>> instruction_heads_;
  GroupSupport support_;
};

}  // namespace sidis::core

#include "core/majority_vote.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sidis::core {

double vote_weight(const Disassembly& d) {
  if (!d.accepted()) return 0.0;
  const double h = std::min(d.margin_headroom, d.score_headroom);
  if (std::isinf(h)) return 1.0;  // gates unarmed: plain majority voting
  return std::clamp(h, kMinAcceptedWeight, 1.0);
}

const Disassembly SlotVote::kNone{};

void SlotVote::add(const Disassembly& d) {
  const double w = vote_weight(d);
  if (w <= 0.0) return;  // rejected windows cast no vote
  auto [it, inserted] = tally_.try_emplace(d.text());
  if (inserted) {
    it->second.rep = d;
    it->second.order = tally_.size();
  }
  it->second.weight += w;
  total_ += w;
}

const Disassembly& SlotVote::winner() const {
  const Entry* best = nullptr;
  for (const auto& [text, entry] : tally_) {
    if (best == nullptr || entry.weight > best->weight ||
        (entry.weight == best->weight && entry.order < best->order)) {
      best = &entry;
    }
  }
  return best == nullptr ? kNone : best->rep;
}

double SlotVote::winner_weight() const {
  double w = 0.0;
  for (const auto& [text, entry] : tally_) w = std::max(w, entry.weight);
  return w;
}

MajorityVoteClassifier MajorityVoteClassifier::train(
    const features::LabeledTraces& input, MajorityVoteConfig config) {
  if (input.labels.size() < 2) {
    throw std::invalid_argument("MajorityVoteClassifier: need >= 2 classes");
  }
  MajorityVoteClassifier out;
  out.labels_ = input.labels;

  const std::vector<features::FeaturePipeline::ClassData> data =
      features::FeaturePipeline::precompute(input, config.pipeline);

  for (std::size_t a = 0; a < data.size(); ++a) {
    for (std::size_t b = a + 1; b < data.size(); ++b) {
      Pair p;
      p.label_a = data[a].label;
      p.label_b = data[b].label;
      p.pipeline = features::FeaturePipeline::fit({&data[a], &data[b]}, config.pipeline);

      features::LabeledTraces pair_input;
      pair_input.labels = {data[a].label, data[b].label};
      pair_input.sets = {data[a].traces, data[b].traces};
      const ml::Dataset train = p.pipeline.transform(pair_input);
      p.classifier = ml::make_classifier(config.classifier, config.factory);
      p.classifier->fit(train);
      out.pairs_.push_back(std::move(p));
    }
  }
  return out;
}

int MajorityVoteClassifier::predict(const sim::Trace& trace) const {
  if (pairs_.empty()) throw std::runtime_error("MajorityVoteClassifier: not trained");
  std::vector<int> sorted_labels = labels_;
  std::sort(sorted_labels.begin(), sorted_labels.end());

  std::vector<int> votes(sorted_labels.size(), 0);
  const auto slot = [&](int label) {
    return static_cast<std::size_t>(
        std::lower_bound(sorted_labels.begin(), sorted_labels.end(), label) -
        sorted_labels.begin());
  };
  for (const Pair& p : pairs_) {
    // Each binary machine sees the trace through its *own* pair-optimal
    // feature space (x_{i,j} in Eq. (2)).
    const int winner = p.classifier->predict(p.pipeline.transform(trace));
    ++votes[slot(winner == p.label_a || winner == p.label_b ? winner : p.label_a)];
  }
  const auto best = std::max_element(votes.begin(), votes.end());
  return sorted_labels[static_cast<std::size_t>(best - votes.begin())];
}

}  // namespace sidis::core

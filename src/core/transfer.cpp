#include "core/transfer.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "sim/hash.hpp"

namespace sidis::core {

namespace {

/// HierarchicalDisassembler is move-only (levels own their classifiers), so
/// recalibrated variants are cloned through the template serializer -- the
/// same round trip a deployed monitor performs when loading templates.
HierarchicalDisassembler clone_model(const HierarchicalDisassembler& model) {
  std::stringstream ss;
  model.save(ss);
  return HierarchicalDisassembler::load(ss);
}

std::mt19937_64 stream_rng(std::uint64_t seed, std::uint64_t salt, int device,
                           std::size_t class_idx) {
  const std::uint64_t dev_key =
      sim::hash_combine(salt, static_cast<std::uint64_t>(device));
  return std::mt19937_64(sim::splitmix64(
      sim::hash_combine(seed, sim::hash_combine(dev_key, class_idx))));
}

/// Interleaves per-class capture sets round-robin: out[k * C + c] is class
/// c's k-th trace, so every prefix of K * C traces is class-balanced.
sim::TraceSet interleave(const std::vector<sim::TraceSet>& per_class) {
  sim::TraceSet out;
  if (per_class.empty()) return out;
  const std::size_t depth = per_class.front().size();
  out.reserve(depth * per_class.size());
  for (std::size_t k = 0; k < depth; ++k) {
    for (const sim::TraceSet& set : per_class) {
      if (k < set.size()) out.push_back(set[k]);
    }
  }
  return out;
}

/// Fraction of `field` windows whose predicted class matches ground truth;
/// parallel over traces, worker-count invariant (shared with the evaluator).
double field_accuracy(const HierarchicalDisassembler& model,
                      const sim::TraceSet& field, std::size_t workers) {
  if (field.empty()) return 0.0;
  std::vector<std::uint8_t> hit(field.size(), 0);
  runtime::parallel_for(field.size(), workers, [&](std::size_t i) {
    hit[i] = model.classify(field[i]).class_idx == field[i].meta.class_idx ? 1 : 0;
  });
  const std::size_t correct =
      static_cast<std::size_t>(std::accumulate(hit.begin(), hit.end(), 0u));
  return static_cast<double>(correct) / static_cast<double>(field.size());
}

}  // namespace

std::string to_string(RecalMode mode) {
  switch (mode) {
    case RecalMode::kRenorm: return "renorm";
    case RecalMode::kRefit: return "refit";
  }
  return "unknown";
}

MultiDeviceResult evaluate_multi_device(const MultiDeviceConfig& md,
                                        const TransferConfig& base) {
  if (md.train_devices.empty()) {
    throw std::invalid_argument("evaluate_multi_device: empty fleet");
  }
  if (std::find(md.train_devices.begin(), md.train_devices.end(),
                md.holdout_device) != md.train_devices.end()) {
    throw std::invalid_argument(
        "evaluate_multi_device: holdout device is in the training fleet");
  }
  if (base.classes.size() < 2) {
    throw std::invalid_argument("evaluate_multi_device: need >= 2 classes");
  }
  if (base.model.classifier != ml::ClassifierKind::kQda) {
    throw std::invalid_argument("evaluate_multi_device: QDA model required");
  }
  std::vector<sim::AcquisitionConfig> configs = md.configs;
  if (configs.empty()) configs.push_back(sim::AcquisitionConfig::nominal());
  for (const sim::AcquisitionConfig& c : configs) {
    if (c.samples_per_cycle != configs.front().samples_per_cycle) {
      throw std::invalid_argument(
          "evaluate_multi_device: pooled configs must share one sample grid "
          "(rate sweeps train per-rate models)");
    }
  }

  // One model recipe serves every corpus here: all configs share the grid,
  // so the CWT scale band is re-keyed once for the (possibly decimated) rate.
  HierarchicalConfig model_config = base.model;
  model_config.pipeline =
      features::configured_for(model_config.pipeline, configs.front().samples_per_cycle);

  // -- profile the fleet ------------------------------------------------------
  // The pooled corpus spreads the same per-device budget over the config
  // ladder; the single-device baselines spend their whole budget on config 0
  // of their one device, so both see traces_per_class * |configs| windows
  // per class and the comparison is budget-matched.
  const std::size_t classes = base.classes.size();
  ProfilingData pooled;
  std::vector<ProfilingData> singles_data(md.train_devices.size());
  std::vector<std::vector<double>> references(md.train_devices.size());
  const std::size_t single_budget = md.traces_per_class * configs.size();
  for (std::size_t di = 0; di < md.train_devices.size(); ++di) {
    const int device = md.train_devices[di];
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const sim::AcquisitionCampaign campaign(
          sim::DeviceModel::make(device), sim::SessionContext{}, configs[ci],
          base.leakage, base.scope);
      if (ci == 0) references[di] = campaign.reference_window();
      for (const std::size_t class_idx : base.classes) {
        std::mt19937_64 rng = stream_rng(
            base.seed, sim::hash_combine(0xAC5EE7ull, ci), device, class_idx);
        sim::TraceSet set = campaign.capture_class(
            class_idx, md.traces_per_class, base.num_programs, rng);
        sim::TraceSet& pool = pooled.classes[class_idx];
        pool.insert(pool.end(), set.begin(), set.end());
        if (ci == 0 && configs.size() > 1) {
          // Top the baseline up to the pooled per-class budget from a fresh
          // stream on its own device (salted so it never replays the pooled
          // draws).
          std::mt19937_64 extra = stream_rng(
              base.seed, sim::hash_combine(0xAC5EE7ull, 0x0Eull), device, class_idx);
          sim::TraceSet top_up = campaign.capture_class(
              class_idx, single_budget - md.traces_per_class, base.num_programs,
              extra);
          set.insert(set.end(), top_up.begin(), top_up.end());
        }
        if (ci == 0) singles_data[di].classes[class_idx] = std::move(set);
      }
    }
  }

  // -- train + calibrate ------------------------------------------------------
  HierarchicalDisassembler pooled_model =
      HierarchicalDisassembler::train(pooled, model_config);
  pooled_model.calibrate_reject(pooled);
  std::vector<double> pooled_reference(references.front().size(), 0.0);
  for (const std::vector<double>& ref : references) {
    for (std::size_t i = 0; i < pooled_reference.size(); ++i) {
      pooled_reference[i] += ref[i] / static_cast<double>(references.size());
    }
  }

  // -- zero-shot field on the held-out device --------------------------------
  const sim::DeviceModel holdout =
      md.holdout_corner ? sim::DeviceModel::make_corner(md.holdout_device)
                        : sim::DeviceModel::make(md.holdout_device);
  // Field RNG streams are keyed per class only, so every model scores the
  // same physical captures -- only the subtracted reference (each monitor's
  // own) differs.
  const auto capture_holdout = [&](const std::vector<double>& reference) {
    sim::AcquisitionCampaign field(holdout, sim::SessionContext{}, configs.front(),
                                   base.leakage, base.scope);
    field.use_reference(reference);
    std::vector<sim::TraceSet> sets;
    sets.reserve(classes);
    for (const std::size_t class_idx : base.classes) {
      std::mt19937_64 rng =
          stream_rng(base.seed, 0xF0F1Dull, md.holdout_device, class_idx);
      sets.push_back(field.capture_class(class_idx, md.test_traces_per_class,
                                         base.num_programs, rng));
    }
    return interleave(sets);
  };

  MultiDeviceResult result;
  result.holdout_device = md.holdout_device;
  for (const auto& [class_idx, set] : pooled.classes) {
    (void)class_idx;
    result.pooled_train_traces += set.size();
  }

  const sim::TraceSet pooled_field = capture_holdout(pooled_reference);
  {
    std::vector<std::uint8_t> hit(pooled_field.size(), 0);
    std::vector<std::uint8_t> verdicts(pooled_field.size(), 0);
    runtime::parallel_for(pooled_field.size(), base.eval_workers, [&](std::size_t i) {
      const Disassembly d = pooled_model.classify(pooled_field[i]);
      hit[i] = d.class_idx == pooled_field[i].meta.class_idx ? 1 : 0;
      verdicts[i] = static_cast<std::uint8_t>(d.verdict);
    });
    std::size_t correct = 0, accepted = 0, misses = 0, flagged_misses = 0;
    for (std::size_t i = 0; i < pooled_field.size(); ++i) {
      correct += hit[i];
      if (verdicts[i] != static_cast<std::uint8_t>(Verdict::kRejected)) ++accepted;
      if (!hit[i]) {
        ++misses;
        if (verdicts[i] != static_cast<std::uint8_t>(Verdict::kOk)) ++flagged_misses;
      }
    }
    const double n = static_cast<double>(pooled_field.size());
    result.pooled_accuracy = n > 0 ? static_cast<double>(correct) / n : 0.0;
    result.pooled_accepted_fraction = n > 0 ? static_cast<double>(accepted) / n : 0.0;
    result.pooled_flagged_miss_fraction =
        misses > 0 ? static_cast<double>(flagged_misses) / static_cast<double>(misses)
                   : 1.0;
  }

  result.best_single_accuracy = 0.0;
  for (std::size_t di = 0; di < md.train_devices.size(); ++di) {
    HierarchicalDisassembler model =
        HierarchicalDisassembler::train(singles_data[di], model_config);
    const sim::TraceSet field = capture_holdout(references[di]);
    SingleDeviceBaseline baseline;
    baseline.train_device = md.train_devices[di];
    baseline.accuracy = field_accuracy(model, field, base.eval_workers);
    result.best_single_accuracy =
        std::max(result.best_single_accuracy, baseline.accuracy);
    result.singles.push_back(baseline);
  }
  result.pooled_lift = result.pooled_accuracy - result.best_single_accuracy;
  return result;
}

TransferEvaluator::TransferEvaluator(int train_device, TransferConfig config)
    : config_(std::move(config)), train_device_(train_device) {
  if (config_.classes.size() < 2) {
    throw std::invalid_argument("TransferEvaluator: need >= 2 classes");
  }
  if (config_.model.classifier != ml::ClassifierKind::kQda) {
    throw std::invalid_argument(
        "TransferEvaluator: recalibration clones templates through the "
        "serializer, which requires QDA levels");
  }
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(train_device),
                                          sim::SessionContext{}, config_.leakage,
                                          config_.scope);
  ProfilerConfig pc;
  pc.traces_per_class = config_.train_traces_per_class;
  pc.num_programs = config_.num_programs;
  pc.classes = config_.classes;
  pc.profile_registers = false;
  pc.workers = config_.eval_workers;
  std::mt19937_64 rng(sim::splitmix64(sim::hash_combine(
      config_.seed, sim::hash_combine(0x7124A1Full,
                                      static_cast<std::uint64_t>(train_device)))));
  profiling_ = profile_device(campaign, pc, rng);
  model_ = HierarchicalDisassembler::train(profiling_, config_.model);
  reference_ = campaign.reference_window();
}

TransferEvaluator::FieldData TransferEvaluator::capture_field(int test_device) const {
  sim::AcquisitionCampaign field(sim::DeviceModel::make(test_device),
                                 sim::SessionContext{}, config_.leakage,
                                 config_.scope);
  // The deployed monitor subtracts the reference it recorded while
  // profiling; the device mismatch survives subtraction as a structured
  // residual (Sec. 4's "similar shape, different offsets").
  field.use_reference(reference_);

  const std::size_t max_budget =
      config_.budgets.empty()
          ? 0
          : *std::max_element(config_.budgets.begin(), config_.budgets.end());

  std::vector<sim::TraceSet> field_sets;
  std::vector<sim::TraceSet> recal_sets;
  field_sets.reserve(config_.classes.size());
  recal_sets.reserve(config_.classes.size());
  for (const std::size_t class_idx : config_.classes) {
    std::mt19937_64 frng = stream_rng(config_.seed, 0xF1E1Dull, test_device, class_idx);
    field_sets.push_back(field.capture_class(class_idx, config_.test_traces_per_class,
                                             config_.num_programs, frng));
    if (max_budget > 0) {
      std::mt19937_64 rrng =
          stream_rng(config_.seed, 0x2ECA1ull, test_device, class_idx);
      recal_sets.push_back(
          field.capture_class(class_idx, max_budget, config_.num_programs, rrng));
    }
  }
  return {interleave(field_sets), interleave(recal_sets)};
}

sim::TraceSet TransferEvaluator::budget_slice(const sim::TraceSet& pool,
                                              std::size_t per_class) const {
  const std::size_t want = per_class * config_.classes.size();
  const std::size_t n = std::min(want, pool.size());
  return sim::TraceSet(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n));
}

HierarchicalDisassembler TransferEvaluator::recalibrated(const sim::TraceSet& recal,
                                                         RecalMode mode) const {
  HierarchicalDisassembler m = clone_model(model_);
  if (recal.empty()) return m;
  m.recalibrate(recal, config_.renorm_rescale);
  if (mode == RecalMode::kRefit) {
    // Boundary adaptation: profiling corpus plus the budget, through the
    // re-normalized pipelines.  The profiling traces anchor the fit where
    // the budget is too small to estimate class covariances alone.
    ProfilingData aug;
    aug.classes = profiling_.classes;
    for (const sim::Trace& t : recal) {
      aug.classes[t.meta.class_idx].push_back(t);
    }
    m.refit_classifiers(aug);
  }
  return m;
}

double TransferEvaluator::accuracy(const HierarchicalDisassembler& model,
                                   const sim::TraceSet& field) const {
  return field_accuracy(model, field, config_.eval_workers);
}

TransferCell TransferEvaluator::evaluate(int test_device) const {
  const FieldData fd = capture_field(test_device);
  TransferCell cell;
  cell.train_device = train_device_;
  cell.test_device = test_device;
  cell.baseline_accuracy = accuracy(model_, fd.field);
  cell.curve.reserve(config_.budgets.size());
  for (const std::size_t k : config_.budgets) {
    BudgetPoint p;
    p.budget_per_class = k;
    if (k == 0) {
      p.renorm_accuracy = cell.baseline_accuracy;
      p.refit_accuracy = cell.baseline_accuracy;
    } else {
      const sim::TraceSet slice = budget_slice(fd.recal_pool, k);
      p.renorm_accuracy = accuracy(recalibrated(slice, RecalMode::kRenorm), fd.field);
      p.refit_accuracy = accuracy(recalibrated(slice, RecalMode::kRefit), fd.field);
    }
    cell.curve.push_back(p);
  }
  return cell;
}

}  // namespace sidis::core

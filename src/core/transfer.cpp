#include "core/transfer.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "sim/hash.hpp"

namespace sidis::core {

namespace {

/// HierarchicalDisassembler is move-only (levels own their classifiers), so
/// recalibrated variants are cloned through the template serializer -- the
/// same round trip a deployed monitor performs when loading templates.
HierarchicalDisassembler clone_model(const HierarchicalDisassembler& model) {
  std::stringstream ss;
  model.save(ss);
  return HierarchicalDisassembler::load(ss);
}

std::mt19937_64 stream_rng(std::uint64_t seed, std::uint64_t salt, int device,
                           std::size_t class_idx) {
  const std::uint64_t dev_key =
      sim::hash_combine(salt, static_cast<std::uint64_t>(device));
  return std::mt19937_64(sim::splitmix64(
      sim::hash_combine(seed, sim::hash_combine(dev_key, class_idx))));
}

/// Interleaves per-class capture sets round-robin: out[k * C + c] is class
/// c's k-th trace, so every prefix of K * C traces is class-balanced.
sim::TraceSet interleave(const std::vector<sim::TraceSet>& per_class) {
  sim::TraceSet out;
  if (per_class.empty()) return out;
  const std::size_t depth = per_class.front().size();
  out.reserve(depth * per_class.size());
  for (std::size_t k = 0; k < depth; ++k) {
    for (const sim::TraceSet& set : per_class) {
      if (k < set.size()) out.push_back(set[k]);
    }
  }
  return out;
}

}  // namespace

std::string to_string(RecalMode mode) {
  switch (mode) {
    case RecalMode::kRenorm: return "renorm";
    case RecalMode::kRefit: return "refit";
  }
  return "unknown";
}

TransferEvaluator::TransferEvaluator(int train_device, TransferConfig config)
    : config_(std::move(config)), train_device_(train_device) {
  if (config_.classes.size() < 2) {
    throw std::invalid_argument("TransferEvaluator: need >= 2 classes");
  }
  if (config_.model.classifier != ml::ClassifierKind::kQda) {
    throw std::invalid_argument(
        "TransferEvaluator: recalibration clones templates through the "
        "serializer, which requires QDA levels");
  }
  const sim::AcquisitionCampaign campaign(sim::DeviceModel::make(train_device),
                                          sim::SessionContext{}, config_.leakage,
                                          config_.scope);
  ProfilerConfig pc;
  pc.traces_per_class = config_.train_traces_per_class;
  pc.num_programs = config_.num_programs;
  pc.classes = config_.classes;
  pc.profile_registers = false;
  pc.workers = config_.eval_workers;
  std::mt19937_64 rng(sim::splitmix64(sim::hash_combine(
      config_.seed, sim::hash_combine(0x7124A1Full,
                                      static_cast<std::uint64_t>(train_device)))));
  profiling_ = profile_device(campaign, pc, rng);
  model_ = HierarchicalDisassembler::train(profiling_, config_.model);
  reference_ = campaign.reference_window();
}

TransferEvaluator::FieldData TransferEvaluator::capture_field(int test_device) const {
  sim::AcquisitionCampaign field(sim::DeviceModel::make(test_device),
                                 sim::SessionContext{}, config_.leakage,
                                 config_.scope);
  // The deployed monitor subtracts the reference it recorded while
  // profiling; the device mismatch survives subtraction as a structured
  // residual (Sec. 4's "similar shape, different offsets").
  field.use_reference(reference_);

  const std::size_t max_budget =
      config_.budgets.empty()
          ? 0
          : *std::max_element(config_.budgets.begin(), config_.budgets.end());

  std::vector<sim::TraceSet> field_sets;
  std::vector<sim::TraceSet> recal_sets;
  field_sets.reserve(config_.classes.size());
  recal_sets.reserve(config_.classes.size());
  for (const std::size_t class_idx : config_.classes) {
    std::mt19937_64 frng = stream_rng(config_.seed, 0xF1E1Dull, test_device, class_idx);
    field_sets.push_back(field.capture_class(class_idx, config_.test_traces_per_class,
                                             config_.num_programs, frng));
    if (max_budget > 0) {
      std::mt19937_64 rrng =
          stream_rng(config_.seed, 0x2ECA1ull, test_device, class_idx);
      recal_sets.push_back(
          field.capture_class(class_idx, max_budget, config_.num_programs, rrng));
    }
  }
  return {interleave(field_sets), interleave(recal_sets)};
}

sim::TraceSet TransferEvaluator::budget_slice(const sim::TraceSet& pool,
                                              std::size_t per_class) const {
  const std::size_t want = per_class * config_.classes.size();
  const std::size_t n = std::min(want, pool.size());
  return sim::TraceSet(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n));
}

HierarchicalDisassembler TransferEvaluator::recalibrated(const sim::TraceSet& recal,
                                                         RecalMode mode) const {
  HierarchicalDisassembler m = clone_model(model_);
  if (recal.empty()) return m;
  m.recalibrate(recal, config_.renorm_rescale);
  if (mode == RecalMode::kRefit) {
    // Boundary adaptation: profiling corpus plus the budget, through the
    // re-normalized pipelines.  The profiling traces anchor the fit where
    // the budget is too small to estimate class covariances alone.
    ProfilingData aug;
    aug.classes = profiling_.classes;
    for (const sim::Trace& t : recal) {
      aug.classes[t.meta.class_idx].push_back(t);
    }
    m.refit_classifiers(aug);
  }
  return m;
}

double TransferEvaluator::accuracy(const HierarchicalDisassembler& model,
                                   const sim::TraceSet& field) const {
  if (field.empty()) return 0.0;
  std::vector<std::uint8_t> hit(field.size(), 0);
  runtime::parallel_for(field.size(), config_.eval_workers, [&](std::size_t i) {
    hit[i] = model.classify(field[i]).class_idx == field[i].meta.class_idx ? 1 : 0;
  });
  const std::size_t correct =
      static_cast<std::size_t>(std::accumulate(hit.begin(), hit.end(), 0u));
  return static_cast<double>(correct) / static_cast<double>(field.size());
}

TransferCell TransferEvaluator::evaluate(int test_device) const {
  const FieldData fd = capture_field(test_device);
  TransferCell cell;
  cell.train_device = train_device_;
  cell.test_device = test_device;
  cell.baseline_accuracy = accuracy(model_, fd.field);
  cell.curve.reserve(config_.budgets.size());
  for (const std::size_t k : config_.budgets) {
    BudgetPoint p;
    p.budget_per_class = k;
    if (k == 0) {
      p.renorm_accuracy = cell.baseline_accuracy;
      p.refit_accuracy = cell.baseline_accuracy;
    } else {
      const sim::TraceSet slice = budget_slice(fd.recal_pool, k);
      p.renorm_accuracy = accuracy(recalibrated(slice, RecalMode::kRenorm), fd.field);
      p.refit_accuracy = accuracy(recalibrated(slice, RecalMode::kRefit), fd.field);
    }
    cell.curve.push_back(p);
  }
  return cell;
}

}  // namespace sidis::core

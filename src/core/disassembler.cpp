#include "core/disassembler.hpp"

#include <sstream>

namespace sidis::core {

std::vector<Disassembly> disassemble(const HierarchicalDisassembler& model,
                                     const sim::TraceSet& windows) {
  // The batched path shares one CWT workspace and per-window normalization
  // across the whole program; results are bit-identical to per-window
  // classify() calls.
  return model.classify_batch(windows);
}

std::string listing(const std::vector<Disassembly>& instructions) {
  std::ostringstream os;
  for (const Disassembly& d : instructions) os << d.text() << '\n';
  return os.str();
}

std::string Tampering::describe() const {
  std::ostringstream os;
  os << "instruction " << index << ": expected '" << avr::to_string(expected)
     << "', observed '" << observed.text() << "'";
  if (class_mismatch) os << " [opcode tampered]";
  if (rd_mismatch) os << " [Rd tampered]";
  if (rr_mismatch) os << " [Rr tampered]";
  return os.str();
}

MalwareDetector::MalwareDetector(avr::Program golden) : golden_(std::move(golden)) {}

std::vector<Tampering> MalwareDetector::check(
    const std::vector<Disassembly>& recovered) const {
  std::vector<Tampering> out;
  const std::size_t n = std::max(golden_.size(), recovered.size());
  for (std::size_t i = 0; i < n; ++i) {
    Tampering t;
    t.index = i;
    t.expected = i < golden_.size() ? golden_[i] : avr::Instruction{};
    if (i < recovered.size()) t.observed = recovered[i];

    if (i >= golden_.size() || i >= recovered.size()) {
      t.class_mismatch = true;
      out.push_back(t);
      continue;
    }
    const Disassembly& d = recovered[i];
    const auto golden_class = avr::class_of(golden_[i]);
    if (!golden_class) {
      // Golden instruction is outside the 112 profiled classes (NOP, RET,
      // MUL...) -- the disassembler cannot label it, so it is not checkable.
      continue;
    }
    t.class_mismatch = *golden_class != d.class_idx;
    if (!t.class_mismatch) {
      if (avr::class_uses_rd(d.class_idx) && d.rd && *d.rd != golden_[i].rd) {
        t.rd_mismatch = true;
      }
      if (avr::class_uses_rr(d.class_idx) && d.rr && *d.rr != golden_[i].rr) {
        t.rr_mismatch = true;
      }
    }
    if (t.class_mismatch || t.rd_mismatch || t.rr_mismatch) out.push_back(t);
  }
  return out;
}

}  // namespace sidis::core

// End-to-end program disassembly and the malware-detection case study
// (Sec. 5.7).
#pragma once

#include <string>
#include <vector>

#include "avr/program.hpp"
#include "core/hierarchical.hpp"
#include "sim/trace.hpp"

namespace sidis::core {

/// Disassembles a sequence of per-instruction trace windows (as captured by
/// sim::AcquisitionCampaign) into recovered instructions.
std::vector<Disassembly> disassemble(const HierarchicalDisassembler& model,
                                     const sim::TraceSet& windows);

/// Assembly-style listing of recovered instructions, one per line.
std::string listing(const std::vector<Disassembly>& instructions);

/// One detected deviation between golden firmware and observed execution.
struct Tampering {
  std::size_t index = 0;          ///< instruction position in the stream
  avr::Instruction expected;      ///< golden instruction
  Disassembly observed;           ///< what the side channel recovered
  bool class_mismatch = false;    ///< opcode class differs
  bool rd_mismatch = false;       ///< destination register differs
  bool rr_mismatch = false;       ///< source register differs
  std::string describe() const;
};

/// Compares a recovered stream against golden firmware, instruction by
/// instruction, over the fields the disassembler can recover (instruction
/// class + operand registers).  This is exactly the paper's masked-AES case
/// study check: "xor r16, r17" silently replaced by "xor r16, r0" is flagged
/// as an rr mismatch.
class MalwareDetector {
 public:
  explicit MalwareDetector(avr::Program golden);

  /// Mismatches between golden and recovered (index-aligned; extra or
  /// missing instructions are reported as class mismatches against NOP).
  std::vector<Tampering> check(const std::vector<Disassembly>& recovered) const;

  const avr::Program& golden() const { return golden_; }

 private:
  avr::Program golden_;
};

}  // namespace sidis::core

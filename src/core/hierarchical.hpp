// The paper's primary contribution: a three-level hierarchical side-channel
// disassembler (Sec. 2.1).
//
//   Level 1 classifies a trace into one of the 8 Table-2 instruction groups;
//   Level 2 classifies it into a specific instruction class within the
//           predicted group;
//   Level 3 recovers the operand registers (Rd and/or Rr) when the class
//           uses them.
//
// Each level owns its own feature pipeline (CWT -> KL selection -> norm ->
// PCA) and classifier, trained from profiling traces of the training device.
// The hierarchy is what makes 112-class recognition tractable: a one-vs-one
// SVM over 112 flat classes needs 6216 binary machines, the hierarchy at
// most C(8,2) + C(24,2) = 304.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "avr/grouping.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"
#include "sim/trace.hpp"

namespace sidis::core {

struct HierarchicalConfig {
  features::PipelineConfig pipeline;
  ml::ClassifierKind classifier = ml::ClassifierKind::kQda;
  ml::FactoryConfig factory;
  /// PCA components used per level (the paper saturates around 43-50).
  std::size_t group_components = 43;
  std::size_t instruction_components = 50;
  std::size_t register_components = 45;
};

/// Profiling corpus: traces per instruction class (any subset of the 112),
/// plus optional per-register corpora for level 3.
struct ProfilingData {
  std::map<std::size_t, sim::TraceSet> classes;      ///< class_idx -> traces
  std::map<std::uint8_t, sim::TraceSet> rd_classes;  ///< Rd value -> traces
  std::map<std::uint8_t, sim::TraceSet> rr_classes;  ///< Rr value -> traces
};

/// One recovered instruction.
struct Disassembly {
  int group = 0;
  std::size_t class_idx = 0;
  std::optional<std::uint8_t> rd;
  std::optional<std::uint8_t> rr;

  /// Best-effort instruction reconstruction (unrecoverable operand fields --
  /// immediates, addresses -- stay zero; the paper's scope is opcode + regs).
  avr::Instruction to_instruction() const;
  /// Assembly-like rendering, e.g. "ADD r3, r17".
  std::string text() const;
};

class HierarchicalDisassembler {
 public:
  HierarchicalDisassembler() = default;

  /// Trains all levels present in `data`.  Level 2 is trained per group
  /// containing >= 2 profiled classes; level 3 per operand type with >= 2
  /// register corpora.  Throws std::invalid_argument on an empty corpus.
  static HierarchicalDisassembler train(const ProfilingData& data,
                                        HierarchicalConfig config = {});

  /// Full three-level classification of one trace window.
  ///
  /// Thread-safety contract: classify() and every other const member are
  /// safe to call concurrently from any number of threads on one shared,
  /// fully trained instance.  The whole inference path is audited to be
  /// free of hidden mutable state: FeaturePipeline::transform, the CWT
  /// filter bank, ColumnScaler/Pca, and every Classifier::predict
  /// implementation (QDA/LDA/NB/SVM/kNN) are pure const reads; the AVR
  /// grouping tables are `static const` (thread-safe one-time init,
  /// immutable afterwards).  Concurrent use is only undefined while a
  /// non-const operation (move assignment, loading over an instance) runs
  /// -- the usual C++ const-correctness rule, with no exceptions hiding in
  /// caches.  runtime::StreamingDisassembler relies on this to share one
  /// model across its worker pool.
  Disassembly classify(const sim::Trace& trace) const;

  /// Level-wise entry points (the Fig.-5 benches evaluate levels in
  /// isolation); `components` overrides the PCA component count, SIZE_MAX
  /// keeps the configured default.
  int classify_group(const sim::Trace& trace,
                     std::size_t components = SIZE_MAX) const;
  std::size_t classify_within_group(int group, const sim::Trace& trace,
                                    std::size_t components = SIZE_MAX) const;
  std::uint8_t classify_rd(const sim::Trace& trace,
                           std::size_t components = SIZE_MAX) const;
  std::uint8_t classify_rr(const sim::Trace& trace,
                           std::size_t components = SIZE_MAX) const;

  bool has_register_level() const { return rd_level_ != nullptr || rr_level_ != nullptr; }
  const HierarchicalConfig& config() const { return config_; }

  /// Template persistence (QDA levels only); see core/serialize.hpp.
  void save(std::ostream& os) const;
  static HierarchicalDisassembler load(std::istream& is);

 private:
  struct Level {
    features::FeaturePipeline pipeline;
    std::unique_ptr<ml::Classifier> classifier;
    std::size_t components = SIZE_MAX;
    int only_label = 0;       ///< used when a level has a single class
    bool trivial = false;     ///< single-class level: no classifier needed
  };

  static Level train_level(const features::LabeledTraces& input,
                           const HierarchicalConfig& config, std::size_t components);
  static Level train_level_precomputed(
      const std::vector<const features::FeaturePipeline::ClassData*>& data,
      const features::LabeledTraces& input, const HierarchicalConfig& config,
      std::size_t components);
  static int predict_level(const Level& level, const sim::Trace& trace,
                           std::size_t components);

  HierarchicalConfig config_;
  Level group_level_;
  std::map<int, Level> instruction_levels_;  ///< group -> level-2 model
  std::unique_ptr<Level> rd_level_;
  std::unique_ptr<Level> rr_level_;
};

}  // namespace sidis::core

// The paper's primary contribution: a three-level hierarchical side-channel
// disassembler (Sec. 2.1).
//
//   Level 1 classifies a trace into one of the 8 Table-2 instruction groups;
//   Level 2 classifies it into a specific instruction class within the
//           predicted group;
//   Level 3 recovers the operand registers (Rd and/or Rr) when the class
//           uses them.
//
// Each level owns its own feature pipeline (CWT -> KL selection -> norm ->
// PCA) and classifier, trained from profiling traces of the training device.
// The hierarchy is what makes 112-class recognition tractable: a one-vs-one
// SVM over 112 flat classes needs 6216 binary machines, the hierarchy at
// most C(8,2) + C(24,2) = 304.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "avr/grouping.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"
#include "sim/trace.hpp"

namespace sidis::core {

struct HierarchicalConfig {
  features::PipelineConfig pipeline;
  ml::ClassifierKind classifier = ml::ClassifierKind::kQda;
  ml::FactoryConfig factory;
  /// PCA components used per level (the paper saturates around 43-50).
  std::size_t group_components = 43;
  std::size_t instruction_components = 50;
  std::size_t register_components = 45;
};

/// Outcome of one classified window under the reject option.
enum class Verdict : std::uint8_t {
  kOk = 0,        ///< all gates passed; trust the recovered instruction
  kDegraded = 1,  ///< delivered, but the input looks off-distribution or an
                  ///< operand gate tripped -- treat operands with suspicion
  kRejected = 2,  ///< a class-level gate tripped; the recovery is a guess
};

std::string to_string(Verdict v);

/// Reject-option calibration knobs.  Thresholds are *calibrated*, not fixed:
/// calibrate_reject() classifies held-out clean traces through every level
/// and places each gate at a low quantile of the clean score distribution,
/// so a gate fires only on inputs that look unlike anything a healthy
/// acquisition chain produces.
struct RejectConfig {
  /// Fraction of clean traces allowed to fail the margin (ambiguity) gate.
  double margin_quantile = 0.005;
  /// Fraction of clean traces allowed to fail the top-score (outlier) gate.
  double score_quantile = 0.005;
  /// Extra slack widening the outlier floor below the quantile, in units of
  /// (median - quantile); absorbs calibration-set sampling error.
  double score_slack = 0.5;
};

/// Named reject-gate operating points -- deployment-grade presets over the
/// raw RejectConfig quantiles.  Calibrating at a stricter point places every
/// gate floor at a higher clean-score quantile, so the rejection sets are
/// *nested*: any window a looser point rejects, every stricter point rejects
/// too.  The selected point is persisted with the templates (serialize v4)
/// so a serving tier can tell how a loaded model was gated.
enum class RejectOperatingPoint : std::uint8_t {
  /// Passive monitoring: gates fire only on gross outliers (~0.5% clean
  /// false-reject budget).  The pre-v4 default.
  kMonitoring = 0,
  /// Alerting deployments: ~2% clean false-reject budget, tighter outlier
  /// slack -- trades a little coverage for earlier fault visibility.
  kBalanced = 1,
  /// Forensic / high-assurance: ~5% clean false-reject budget, no outlier
  /// slack -- only windows deep inside the clean envelope are trusted.
  kStrict = 2,
  /// Gates were calibrated from an explicit RejectConfig (or the archive
  /// predates v4, where the quantiles were not recorded).
  kCustom = 3,
};

std::string to_string(RejectOperatingPoint point);

/// The calibration quantiles a named operating point stands for.  Throws
/// std::invalid_argument for kCustom (it names the absence of a preset).
RejectConfig reject_config_for(RejectOperatingPoint point);

/// Profiling corpus: traces per instruction class (any subset of the 112),
/// plus optional per-register corpora for level 3.
struct ProfilingData {
  std::map<std::size_t, sim::TraceSet> classes;      ///< class_idx -> traces
  std::map<std::uint8_t, sim::TraceSet> rd_classes;  ///< Rd value -> traces
  std::map<std::uint8_t, sim::TraceSet> rr_classes;  ///< Rr value -> traces
};

/// Per-feature first and second moments of the training corpus in the
/// *monitor feature space* (the post-pipeline vectors of the model's monitor
/// level).  Persisted with the templates (serialize v3) so a deployed drift
/// monitor can compare its streaming estimates against what the model was
/// trained on without access to the profiling corpus.
struct FeatureMoments {
  linalg::Vector mean;      ///< per-feature mean over the training corpus
  linalg::Vector variance;  ///< per-feature population variance
  std::uint64_t count = 0;  ///< training vectors the moments were pooled from

  bool empty() const { return mean.empty(); }
};

/// One recovered instruction.
struct Disassembly {
  int group = 0;
  std::size_t class_idx = 0;
  std::optional<std::uint8_t> rd;
  std::optional<std::uint8_t> rr;

  /// Reject-option outcome.  Always kOk until calibrate_reject() has armed
  /// the gates; after that, kRejected/kDegraded flag windows whose scores
  /// fall outside the clean calibration envelope.
  Verdict verdict = Verdict::kOk;
  /// Worst margin headroom over all gated levels: min(margin - floor).
  /// Negative exactly when a margin gate tripped; +inf when gates are off.
  double margin_headroom = std::numeric_limits<double>::infinity();
  /// Worst top-score headroom over all gated levels (outlier gate).
  double score_headroom = std::numeric_limits<double>::infinity();

  /// Normalized per-class log-posterior over the model's posterior_classes()
  /// support, composed across the hierarchy: log P(class | x) =
  /// log P(group | x) + log P(class | group, x), each factor a log-softmax
  /// over its level's score surface.  Empty on the plain classify() path --
  /// only classify_scored()/classify_batch_scored() pay for it.  exp() of the
  /// entries sums to 1 up to rounding; this is the emission row sequence
  /// decoding consumes.
  linalg::Vector log_posterior;

  bool accepted() const { return verdict != Verdict::kRejected; }

  /// Best-effort instruction reconstruction (unrecoverable operand fields --
  /// immediates, addresses -- stay zero; the paper's scope is opcode + regs).
  avr::Instruction to_instruction() const;
  /// Assembly-like rendering, e.g. "ADD r3, r17".
  std::string text() const;
};

class HierarchicalDisassembler {
 public:
  HierarchicalDisassembler() = default;

  /// Trains all levels present in `data`.  Level 2 is trained per group
  /// containing >= 2 profiled classes; level 3 per operand type with >= 2
  /// register corpora.  Throws std::invalid_argument on an empty corpus.
  static HierarchicalDisassembler train(const ProfilingData& data,
                                        HierarchicalConfig config = {});

  /// Full three-level classification of one trace window.
  ///
  /// Thread-safety contract: classify() and every other const member are
  /// safe to call concurrently from any number of threads on one shared,
  /// fully trained instance.  The whole inference path is audited to be
  /// free of hidden mutable state: FeaturePipeline::transform, the CWT
  /// filter bank, ColumnScaler/Pca, and every Classifier::predict
  /// implementation (QDA/LDA/NB/SVM/kNN) are pure const reads; the AVR
  /// grouping tables are `static const` (thread-safe one-time init,
  /// immutable afterwards).  Concurrent use is only undefined while a
  /// non-const operation (move assignment, loading over an instance) runs
  /// -- the usual C++ const-correctness rule, with no exceptions hiding in
  /// caches.  runtime::StreamingDisassembler relies on this to share one
  /// model across its worker pool.
  Disassembly classify(const sim::Trace& trace) const;

  /// Batched classification -- bit-identical to calling classify() per
  /// window (labels, operands, verdicts, and headrooms match to the last
  /// bit), but lane-vectorized: windows bucket by trace length, and each
  /// multi-window bucket runs the whole hot path in struct-of-arrays form --
  /// batch CWT (Cwt::transform_batch / coefficients_batch over a shared FFT
  /// plan), fused feature transform (FeaturePipeline::transform_prepared_
  /// batch), and blocked QDA scoring (Qda::predict_scored_batch) -- with the
  /// window dimension innermost so every inner loop vectorizes across the
  /// batch while each window keeps the scalar accumulation order.  Level 2
  /// re-batches by predicted group and level 3 by operand usage, so every
  /// classifier invocation stays a dense sub-batch.  Singleton buckets take
  /// the scalar path.  This is the engine-room of the fleet runtime's
  /// submit_batch path.  Thread-safe like classify().
  std::vector<Disassembly> classify_batch(const sim::TraceSet& traces) const;

  /// classify() plus the full per-class log-posterior (see
  /// Disassembly::log_posterior).  Labels, operands, verdicts and headrooms
  /// are bit-identical to classify() -- the reject gates consume the exact
  /// same level scores; the posterior is composed from them, not the other
  /// way round.  Every trained level-2 model runs on every window (an honest
  /// joint posterior needs mass outside the predicted group), so this path
  /// costs roughly one level-2 evaluation per trained group.  Levels whose
  /// classifier exposes no score surface (SVM votes, kNN) contribute a
  /// one-hot factor at their prediction.  Thread-safe like classify().
  Disassembly classify_scored(const sim::Trace& trace) const;

  /// Batched scored classification: classify_batch's lane-vectorized hot
  /// path (SoA marshal, fused feature transform, blocked QDA scoring) with
  /// the score surfaces kept, so out[i] is bit-identical to
  /// classify_scored(traces[i]) including the posterior.  Falls back to the
  /// scalar scored path per window when any class-level classifier lacks a
  /// score surface.  Thread-safe like classify().
  std::vector<Disassembly> classify_batch_scored(const sim::TraceSet& traces) const;

  /// Ascending class indices spanned by Disassembly::log_posterior -- the
  /// classes the model was profiled on.  Sequence decoders index their
  /// transition priors through this support.
  const std::vector<std::size_t>& posterior_classes() const {
    return posterior_classes_;
  }

  /// Level-wise entry points (the Fig.-5 benches evaluate levels in
  /// isolation); `components` overrides the PCA component count, SIZE_MAX
  /// keeps the configured default.
  int classify_group(const sim::Trace& trace,
                     std::size_t components = SIZE_MAX) const;
  std::size_t classify_within_group(int group, const sim::Trace& trace,
                                    std::size_t components = SIZE_MAX) const;
  std::uint8_t classify_rd(const sim::Trace& trace,
                           std::size_t components = SIZE_MAX) const;
  std::uint8_t classify_rr(const sim::Trace& trace,
                           std::size_t components = SIZE_MAX) const;

  /// Calibrates the reject gates on *clean* traces (ideally held out from
  /// training, though in-sample calibration is only mildly optimistic).
  /// Every level present in `clean` gets a margin floor and a top-score
  /// floor placed at low quantiles of the clean score distribution; levels
  /// absent from `clean` stay ungated.  After calibration, classify()
  /// populates Disassembly::verdict:
  ///
  ///   * group/instruction margin or score below floor  -> kRejected
  ///   * register-level gate below floor                -> kDegraded
  ///     (the opcode is still trusted; the operand is not)
  ///
  /// Idempotent; recalibrating replaces the thresholds.
  void calibrate_reject(const ProfilingData& clean, const RejectConfig& config = {});

  /// Named-operating-point overload: calibrates at the preset's quantiles
  /// and records the point, so it survives serialization (v4) and a serving
  /// tier can report how its models are gated.  The RejectConfig overload
  /// records kCustom.
  void calibrate_reject(const ProfilingData& clean, RejectOperatingPoint point);

  /// The operating point of the last calibrate_reject() call (kCustom for
  /// explicit RejectConfig calibrations and pre-v4 archives; meaningless
  /// until reject_calibrated()).
  RejectOperatingPoint reject_operating_point() const { return reject_point_; }

  /// True once calibrate_reject() has armed at least the group gate.
  bool reject_calibrated() const { return group_level_.gate.active; }

  /// CSA re-normalization against a recalibration corpus captured on the
  /// *deployment* device (Sec. 5.6 recalibration budgets): re-centres every
  /// non-trivial level's column scaler on the corpus via
  /// FeaturePipeline::renormalized, leaving feature points, PCA and the
  /// trained classifiers untouched.  Labels are not consulted; a roughly
  /// class-balanced corpus of a few traces per class suffices.  Reject gates
  /// calibrated before recalibration remain armed but conservative --
  /// re-run calibrate_reject() with deployment-device traces to retighten
  /// them.  Throws like FeaturePipeline::renormalized.
  void recalibrate(const sim::TraceSet& recal, bool rescale = false);

  /// Partial refit (the second Sec. 5.6 recalibration arm): retrains every
  /// level's classifier on `data` through the existing -- possibly
  /// recalibrated -- pipelines, keeping feature selection and PCA fixed.
  /// Intended use: append a small deployment-device corpus to the profiling
  /// corpus and refit, so decision boundaries adapt without re-running
  /// selection.  Levels whose labels are absent from `data` (e.g. register
  /// corpora not re-captured) keep their trained classifiers.
  void refit_classifiers(const ProfilingData& data);

  bool has_register_level() const { return rd_level_ != nullptr || rr_level_ != nullptr; }
  const HierarchicalConfig& config() const { return config_; }

  /// Pooled training moments in the monitor feature space (see
  /// FeatureMoments).  Empty when the model predates serialize v3 or every
  /// level is trivial (single profiled class -- nothing to monitor).
  const FeatureMoments& training_moments() const { return training_moments_; }
  bool has_training_moments() const { return !training_moments_.empty(); }

  /// Projects one trace into the monitor feature space: the post-pipeline
  /// vector of the monitor level.  That level is the group level when it is
  /// non-trivial, else the first trained instruction level -- the group
  /// level degenerates to a label constant (no pipeline at all) whenever all
  /// profiled classes share one instruction group, so drift must then be
  /// watched where features still exist.  Thread-safe like classify().
  /// Throws std::runtime_error when every level is trivial.
  linalg::Vector monitor_features(const sim::Trace& trace) const;

  /// Template persistence (QDA levels only); see core/serialize.hpp.
  void save(std::ostream& os) const;
  /// `version` is the archive format version being read (load_disassembler
  /// passes it through); v2 archives carry no training-moments block.
  static HierarchicalDisassembler load(std::istream& is, int version = 3);

 public:
  /// Calibrated reject thresholds of one level (public for serialization).
  struct LevelGate {
    bool active = false;
    double margin_floor = -std::numeric_limits<double>::infinity();
    double score_floor = -std::numeric_limits<double>::infinity();
  };

 private:
  /// The multimodal fusion layer reads the trained levels directly (per-level
  /// pipelines for joint-feature heads, register levels for operand
  /// recovery); see core/fusion.hpp.
  friend class FusedDisassembler;

  struct Level {
    features::FeaturePipeline pipeline;
    std::unique_ptr<ml::Classifier> classifier;
    std::size_t components = SIZE_MAX;
    int only_label = 0;       ///< used when a level has a single class
    bool trivial = false;     ///< single-class level: no classifier needed
    LevelGate gate;           ///< reject thresholds (inactive until calibrated)
  };

  static Level train_level(const features::LabeledTraces& input,
                           const HierarchicalConfig& config, std::size_t components);
  static Level train_level_precomputed(
      const std::vector<const features::FeaturePipeline::ClassData*>& data,
      const features::LabeledTraces& input, const HierarchicalConfig& config,
      std::size_t components);
  static int predict_level(const Level& level, const sim::Trace& trace,
                           std::size_t components);
  static ml::ScoredPrediction predict_level_scored(const Level& level,
                                                   const sim::Trace& trace,
                                                   std::size_t components);
  /// One window mid-batch: the raw trace plus its lazily computed per-trace
  /// normalization, shared across the levels that need it.
  struct PreparedWindow;
  static ml::ScoredPrediction predict_level_prepared(const Level& level,
                                                     PreparedWindow& window,
                                                     dsp::CwtWorkspace& ws);
  /// classify() on a prepared window with caller-owned scratch -- the shared
  /// implementation of classify() and classify_batch().
  Disassembly classify_prepared(PreparedWindow& window, dsp::CwtWorkspace& ws) const;
  /// classify_scored() on a prepared window -- the scalar scored path shared
  /// by classify_scored() and classify_batch_scored()'s fallbacks.
  Disassembly classify_prepared_scored(PreparedWindow& window,
                                       dsp::CwtWorkspace& ws) const;
  /// Rebuilds posterior_classes_ from the trained levels (load path; train()
  /// takes the support straight from the profiling corpus).
  void finalize_posterior_support();
  static void calibrate_level(Level& level, const features::LabeledTraces& input,
                              const RejectConfig& config);
  /// The level whose pipeline defines the monitor feature space (nullptr
  /// when every level is trivial).
  const Level* monitor_level() const;

  HierarchicalConfig config_;
  Level group_level_;
  std::map<int, Level> instruction_levels_;  ///< group -> level-2 model
  std::unique_ptr<Level> rd_level_;
  std::unique_ptr<Level> rr_level_;
  FeatureMoments training_moments_;
  RejectOperatingPoint reject_point_ = RejectOperatingPoint::kMonitoring;
  std::vector<std::size_t> posterior_classes_;  ///< ascending, see accessor
};

}  // namespace sidis::core

#include "core/profiler.hpp"

#include <stdexcept>

namespace sidis::core {

ProfilingData profile_device(const sim::AcquisitionCampaign& campaign,
                             const ProfilerConfig& config, std::mt19937_64& rng,
                             const ProfilerProgress& progress) {
  std::vector<std::size_t> classes = config.classes;
  if (classes.empty()) {
    classes.resize(avr::num_instruction_classes());
    for (std::size_t i = 0; i < classes.size(); ++i) classes[i] = i;
  }
  std::vector<std::uint8_t> registers = config.registers;
  if (config.profile_registers && registers.empty()) {
    for (int r = 0; r < 32; ++r) registers.push_back(static_cast<std::uint8_t>(r));
  }
  const std::size_t total =
      classes.size() + (config.profile_registers ? 2 * registers.size() : 0);
  std::size_t done = 0;
  const auto tick = [&](const std::string& item) {
    ++done;
    return !progress || progress(done, total, item);
  };

  ProfilingData data;
  for (std::size_t cls : classes) {
    data.classes[cls] = campaign.capture_class(cls, config.traces_per_class,
                                               config.num_programs, rng);
    if (!tick(avr::instruction_classes()[cls].name)) {
      throw std::runtime_error("profile_device: aborted by progress callback");
    }
  }
  if (config.profile_registers) {
    for (std::uint8_t r : registers) {
      data.rd_classes[r] = campaign.capture_register(
          true, r, config.traces_per_register, config.num_programs, rng);
      if (!tick("Rd" + std::to_string(r))) {
        throw std::runtime_error("profile_device: aborted by progress callback");
      }
    }
    for (std::uint8_t r : registers) {
      data.rr_classes[r] = campaign.capture_register(
          false, r, config.traces_per_register, config.num_programs, rng);
      if (!tick("Rr" + std::to_string(r))) {
        throw std::runtime_error("profile_device: aborted by progress callback");
      }
    }
  }
  return data;
}

}  // namespace sidis::core

#include "core/profiler.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace sidis::core {

namespace {

/// One independent unit of the campaign: a class corpus or a register corpus.
struct CampaignItem {
  enum class Kind { kClass, kRd, kRr } kind = Kind::kClass;
  std::size_t class_idx = 0;   ///< Kind::kClass
  std::uint8_t reg = 0;        ///< Kind::kRd / kRr
  std::uint64_t seed = 0;      ///< private RNG stream
  std::string name;            ///< progress label
};

}  // namespace

ProfilingData profile_device(const sim::AcquisitionCampaign& campaign,
                             const ProfilerConfig& config, std::mt19937_64& rng,
                             const ProfilerProgress& progress) {
  std::vector<std::size_t> classes = config.classes;
  if (classes.empty()) {
    classes.resize(avr::num_instruction_classes());
    for (std::size_t i = 0; i < classes.size(); ++i) classes[i] = i;
  }
  std::vector<std::uint8_t> registers = config.registers;
  if (config.profile_registers && registers.empty()) {
    for (int r = 0; r < 32; ++r) registers.push_back(static_cast<std::uint8_t>(r));
  }

  // Flatten the campaign into independent items, each with its own RNG
  // stream drawn from the caller's rng in campaign order.  This is what
  // makes the corpus worker-count-invariant: captures never share a stream,
  // so scheduling cannot reorder anyone's draws.
  std::vector<CampaignItem> items;
  for (std::size_t cls : classes) {
    items.push_back({CampaignItem::Kind::kClass, cls, 0, rng(),
                     std::string(avr::instruction_classes()[cls].name)});
  }
  if (config.profile_registers) {
    for (std::uint8_t r : registers) {
      items.push_back(
          {CampaignItem::Kind::kRd, 0, r, rng(), "Rd" + std::to_string(r)});
    }
    for (std::uint8_t r : registers) {
      items.push_back(
          {CampaignItem::Kind::kRr, 0, r, rng(), "Rr" + std::to_string(r)});
    }
  }

  std::vector<sim::TraceSet> results(items.size());
  std::mutex progress_mutex;  // serializes the callback (API contract)
  std::size_t done = 0;
  std::atomic<bool> aborted{false};

  runtime::parallel_for(items.size(), config.workers, [&](std::size_t i) {
    if (aborted.load(std::memory_order_relaxed)) return;  // skip, don't capture
    const CampaignItem& item = items[i];
    std::mt19937_64 item_rng(item.seed);
    switch (item.kind) {
      case CampaignItem::Kind::kClass:
        results[i] = campaign.capture_class(item.class_idx, config.traces_per_class,
                                            config.num_programs, item_rng);
        break;
      case CampaignItem::Kind::kRd:
        results[i] = campaign.capture_register(true, item.reg,
                                               config.traces_per_register,
                                               config.num_programs, item_rng);
        break;
      case CampaignItem::Kind::kRr:
        results[i] = campaign.capture_register(false, item.reg,
                                               config.traces_per_register,
                                               config.num_programs, item_rng);
        break;
    }
    if (progress) {
      std::lock_guard lock(progress_mutex);
      ++done;
      if (!progress(done, items.size(), item.name)) {
        aborted.store(true, std::memory_order_relaxed);
      }
    }
  });
  if (aborted.load()) {
    throw std::runtime_error("profile_device: aborted by progress callback");
  }

  ProfilingData data;
  for (std::size_t i = 0; i < items.size(); ++i) {
    switch (items[i].kind) {
      case CampaignItem::Kind::kClass:
        data.classes[items[i].class_idx] = std::move(results[i]);
        break;
      case CampaignItem::Kind::kRd:
        data.rd_classes[items[i].reg] = std::move(results[i]);
        break;
      case CampaignItem::Kind::kRr:
        data.rr_classes[items[i].reg] = std::move(results[i]);
        break;
    }
  }
  return data;
}

}  // namespace sidis::core

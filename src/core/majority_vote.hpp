// Majority-voting one-vs-one classification (Sec. 5.4, Eq. (2)/(3)).
//
// The general method projects every trace onto principal components of the
// *unified* DNVP set; those components are a compromise across all class
// pairs.  The majority-voting method instead fits, per class pair (c_i, c_j),
// a dedicated feature pipeline on that pair's own DNVP -- the best possible
// feature space for that binary decision -- and lets K(K-1)/2 binary
// classifiers vote.  The payoff is the paper's Fig. 6: with as few as 3
// variables per binary machine, SR jumps from near-chance (general method)
// to 82-85%.
#pragma once

#include <memory>
#include <vector>

#include "features/pipeline.hpp"
#include "ml/factory.hpp"

namespace sidis::core {

struct MajorityVoteConfig {
  features::PipelineConfig pipeline;  ///< pipeline.pca_components = per-pair variables
  ml::ClassifierKind classifier = ml::ClassifierKind::kQda;
  ml::FactoryConfig factory;
};

class MajorityVoteClassifier {
 public:
  MajorityVoteClassifier() = default;

  /// Fits one pipeline + binary classifier per class pair.  The expensive
  /// per-class CWT moment pass is shared across all pairs.
  static MajorityVoteClassifier train(const features::LabeledTraces& input,
                                      MajorityVoteConfig config = {});

  /// Majority vote over all pairwise decisions (Eq. (3)); ties resolve to
  /// the smallest label for determinism.
  int predict(const sim::Trace& trace) const;

  std::size_t num_pairs() const { return pairs_.size(); }
  const std::vector<int>& labels() const { return labels_; }

 private:
  struct Pair {
    int label_a = 0;
    int label_b = 0;
    features::FeaturePipeline pipeline;
    std::unique_ptr<ml::Classifier> classifier;
  };
  std::vector<int> labels_;
  std::vector<Pair> pairs_;
};

}  // namespace sidis::core

// Majority-voting one-vs-one classification (Sec. 5.4, Eq. (2)/(3)).
//
// The general method projects every trace onto principal components of the
// *unified* DNVP set; those components are a compromise across all class
// pairs.  The majority-voting method instead fits, per class pair (c_i, c_j),
// a dedicated feature pipeline on that pair's own DNVP -- the best possible
// feature space for that binary decision -- and lets K(K-1)/2 binary
// classifiers vote.  The payoff is the paper's Fig. 6: with as few as 3
// variables per binary machine, SR jumps from near-chance (general method)
// to 82-85%.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"
#include "features/pipeline.hpp"
#include "ml/factory.hpp"

namespace sidis::core {

/// Floor weight of an *accepted* window whose gate headroom is tiny: a
/// degraded-but-delivered window still gets a say, just not a full one.
inline constexpr double kMinAcceptedWeight = 0.05;

/// Weight of one classified window in a sequence-level (per-slot) vote.
///
/// Fixes the interaction flagged in the ROADMAP: a *rejected* window used to
/// cast a full-weight vote, so a burst of rejects could flip a slot decision
/// away from cleanly observed iterations.  Weights:
///
///   * rejected windows vote 0 -- the recovery is a guess by definition;
///   * with the reject gates unarmed (headrooms +inf), every window votes 1
///     (plain majority voting, the pre-reject-option behaviour);
///   * otherwise the vote is the worst signed gate headroom
///     min(margin_headroom, score_headroom) clamped to
///     [kMinAcceptedWeight, 1], so confidently-clean windows outvote
///     barely-accepted ones monotonically.
double vote_weight(const Disassembly& d);

/// Weighted vote accumulator for one instruction slot observed over several
/// loop iterations.  Candidates are keyed by their rendered text (opcode +
/// operands); ties resolve to the earliest-seen candidate for determinism.
class SlotVote {
 public:
  /// Adds one observation with weight vote_weight(d).
  void add(const Disassembly& d);

  /// Best-weighted candidate so far; a default Disassembly when no
  /// observation carried weight (all rejected or nothing added).
  const Disassembly& winner() const;

  double winner_weight() const;
  /// Total weight cast; 0 means every observation was rejected.
  double total_weight() const { return total_; }

 private:
  struct Entry {
    Disassembly rep;  ///< first accepted observation of this candidate
    double weight = 0.0;
    std::size_t order = 0;  ///< insertion order, the deterministic tie-break
  };
  std::map<std::string, Entry> tally_;
  double total_ = 0.0;
  static const Disassembly kNone;
};

struct MajorityVoteConfig {
  features::PipelineConfig pipeline;  ///< pipeline.pca_components = per-pair variables
  ml::ClassifierKind classifier = ml::ClassifierKind::kQda;
  ml::FactoryConfig factory;
};

class MajorityVoteClassifier {
 public:
  MajorityVoteClassifier() = default;

  /// Fits one pipeline + binary classifier per class pair.  The expensive
  /// per-class CWT moment pass is shared across all pairs.
  static MajorityVoteClassifier train(const features::LabeledTraces& input,
                                      MajorityVoteConfig config = {});

  /// Majority vote over all pairwise decisions (Eq. (3)); ties resolve to
  /// the smallest label for determinism.
  int predict(const sim::Trace& trace) const;

  std::size_t num_pairs() const { return pairs_.size(); }
  const std::vector<int>& labels() const { return labels_; }

 private:
  struct Pair {
    int label_a = 0;
    int label_b = 0;
    features::FeaturePipeline pipeline;
    std::unique_ptr<ml::Classifier> classifier;
  };
  std::vector<int> labels_;
  std::vector<Pair> pairs_;
};

}  // namespace sidis::core

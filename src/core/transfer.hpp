// Template-transfer evaluation (Sec. 5.6 / Table 4): train the hierarchical
// disassembler on one device, classify field traces captured on another, and
// sweep a recalibration budget -- K traces per class from the deployment
// device spent on CSA re-normalization or a partial classifier refit.
//
// The evaluator owns the profiling-device model plus its reference window;
// every field capture classifies against *profiling* templates and the
// profiling reference, exactly like a deployed monitor that cannot re-profile
// in the field.  Both campaigns run in the same nominal session, so the
// measured gap isolates inter-device process variation (per-opcode corners,
// thermal drift, decoupling pole) from session effects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"
#include "core/profiler.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {

/// How a recalibration budget is spent.
enum class RecalMode {
  kRenorm,  ///< re-centre each level's column scaler (CSA re-normalization)
  kRefit,   ///< re-normalize, then retrain classifiers on profiling + budget
};

std::string to_string(RecalMode mode);

struct TransferConfig {
  /// Instruction classes in the evaluation matrix (>= 2 required).
  std::vector<std::size_t> classes;
  std::size_t train_traces_per_class = 90;
  std::size_t test_traces_per_class = 40;
  /// Profiling program files; field captures reuse the same files so the
  /// matrix isolates the device axis (the paper's Sec. 5.6 protocol swaps
  /// only the chip).
  int num_programs = 10;
  /// Recalibration budgets, in traces per class.  0 means "no adaptation"
  /// and always reproduces the baseline accuracy.
  std::vector<std::size_t> budgets = {0, 1, 5, 10, 25};
  /// Also replace per-column standard deviations during re-normalization
  /// (noisy below ~10 traces/class; see FeaturePipeline::renormalized).
  bool renorm_rescale = false;
  /// Model recipe.  Must use a QDA classifier: recalibrated variants are
  /// cloned through the template serializer, which persists QDA levels.
  HierarchicalConfig model;
  sim::LeakageConfig leakage;
  sim::ScopeConfig scope;
  std::uint64_t seed = 0x51D15;
  /// Worker threads for field-classification sweeps (0 = auto).  Capture
  /// streams are keyed per (device, class), so results are bit-identical
  /// for any worker count.
  std::size_t eval_workers = 0;
};

/// One accuracy-vs-budget sample of the Table 4 sweep.
struct BudgetPoint {
  std::size_t budget_per_class = 0;
  double renorm_accuracy = 0.0;
  double refit_accuracy = 0.0;
};

/// One (train device, test device) cell of the transfer matrix.
struct TransferCell {
  int train_device = 0;
  int test_device = 0;
  /// Accuracy with profiling templates applied verbatim (budget 0).
  double baseline_accuracy = 0.0;
  std::vector<BudgetPoint> curve;
};

/// Multi-device zero-shot protocol (the acquisition-sweep extension of the
/// Table-4 matrix): profile a *fleet* of devices {A..E}, optionally at
/// several acquisition configurations, pool the corpus into one template
/// set, and evaluate -- with no recalibration budget at all -- on a held-out
/// corner-sampled device F that no template ever saw.  The baselines are the
/// same budget spent on each single device alone; the pooled model's lift
/// over the *best* single baseline is the quantity the CI gates.
struct MultiDeviceConfig {
  /// Profiled fleet (DeviceModel::make ids).  Device 0 is nominal.
  std::vector<int> train_devices = {0, 1, 2, 3, 4};
  /// Held-out deployment device, never profiled.
  int holdout_device = 7;
  /// Draw the holdout from DeviceModel::make_corner (process-corner edges)
  /// rather than make()'s interior.  The train/holdout seed-spaces are
  /// disjoint either way.
  bool holdout_corner = true;
  /// Acquisition configurations pooled into the training corpus -- config
  /// augmentation: resolution/bandwidth variants teach the templates which
  /// spectral detail is device-furniture and which is signature.  All
  /// entries must share the leading entry's sample grid (one fitted pipeline
  /// serves one window length; rate sweeps train per-rate models instead);
  /// evaluate_multi_device throws otherwise.  Empty = nominal only.  Field
  /// captures on F always use the leading entry.
  std::vector<sim::AcquisitionConfig> configs;
  /// Traces per class per (device, config) cell of the pooled corpus.  The
  /// single-device baselines get the same *total* budget on their one
  /// device, so the comparison is budget-matched, not corpus-size-matched.
  std::size_t traces_per_class = 24;
  std::size_t test_traces_per_class = 24;
};

struct SingleDeviceBaseline {
  int train_device = 0;
  double accuracy = 0.0;  ///< zero-shot accuracy on the holdout device
};

struct MultiDeviceResult {
  int holdout_device = 0;
  std::size_t pooled_train_traces = 0;  ///< total windows behind the pooled fit
  double pooled_accuracy = 0.0;
  /// Reject-gate behaviour of the pooled model on F (gates calibrated on the
  /// pooled profiling corpus): fraction of field windows not kRejected, and
  /// the fraction of *misclassified* windows the gates flagged (!kOk).
  double pooled_accepted_fraction = 0.0;
  double pooled_flagged_miss_fraction = 0.0;
  std::vector<SingleDeviceBaseline> singles;
  double best_single_accuracy = 0.0;
  double pooled_lift = 0.0;  ///< pooled_accuracy - best_single_accuracy
};

/// Runs the protocol above; `base` supplies classes, model recipe, leakage /
/// scope bases, seed and eval workers (budgets are ignored -- the protocol
/// is zero-shot by definition).  Each model classifies field traces against
/// the reference its own profiling campaign recorded (the pooled model
/// against the fleet-averaged reference), mirroring TransferEvaluator's
/// deployed-monitor convention.  Throws std::invalid_argument on an empty
/// fleet, a holdout inside the fleet, mixed sample grids, or a non-QDA model.
MultiDeviceResult evaluate_multi_device(const MultiDeviceConfig& md,
                                        const TransferConfig& base);

class TransferEvaluator {
 public:
  /// Profiles `train_device` and trains the transferable model.  Throws
  /// std::invalid_argument on fewer than 2 classes or a non-QDA classifier.
  TransferEvaluator(int train_device, TransferConfig config);

  /// Field + recalibration corpora captured on one deployment device.  Both
  /// sets are interleaved round-robin by class, so any prefix of
  /// K * classes() recalibration traces is class-balanced.
  struct FieldData {
    sim::TraceSet field;       ///< scoring corpus (labels in meta.class_idx)
    sim::TraceSet recal_pool;  ///< max-budget recalibration pool
  };
  FieldData capture_field(int test_device) const;

  /// First `per_class` recalibration traces of each class from an
  /// interleaved pool (clamped to what the pool holds).
  sim::TraceSet budget_slice(const sim::TraceSet& pool, std::size_t per_class) const;

  /// Clones the trained model and spends `recal` on the chosen adaptation.
  /// An empty corpus returns an untouched clone.
  HierarchicalDisassembler recalibrated(const sim::TraceSet& recal,
                                        RecalMode mode) const;

  /// Fraction of `field` windows whose predicted class matches the ground
  /// truth; parallel over traces, worker-count invariant.
  double accuracy(const HierarchicalDisassembler& model,
                  const sim::TraceSet& field) const;

  /// Full budget sweep against one deployment device.
  TransferCell evaluate(int test_device) const;

  const HierarchicalDisassembler& model() const { return model_; }
  const TransferConfig& config() const { return config_; }
  int train_device() const { return train_device_; }
  /// Profiling reference window a deployed monitor would carry.
  const std::vector<double>& reference_window() const { return reference_; }

 private:
  TransferConfig config_;
  int train_device_ = 0;
  ProfilingData profiling_;  ///< retained: the refit arm augments this corpus
  HierarchicalDisassembler model_;
  std::vector<double> reference_;
};

}  // namespace sidis::core

// Template-transfer evaluation (Sec. 5.6 / Table 4): train the hierarchical
// disassembler on one device, classify field traces captured on another, and
// sweep a recalibration budget -- K traces per class from the deployment
// device spent on CSA re-normalization or a partial classifier refit.
//
// The evaluator owns the profiling-device model plus its reference window;
// every field capture classifies against *profiling* templates and the
// profiling reference, exactly like a deployed monitor that cannot re-profile
// in the field.  Both campaigns run in the same nominal session, so the
// measured gap isolates inter-device process variation (per-opcode corners,
// thermal drift, decoupling pole) from session effects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"
#include "core/profiler.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {

/// How a recalibration budget is spent.
enum class RecalMode {
  kRenorm,  ///< re-centre each level's column scaler (CSA re-normalization)
  kRefit,   ///< re-normalize, then retrain classifiers on profiling + budget
};

std::string to_string(RecalMode mode);

struct TransferConfig {
  /// Instruction classes in the evaluation matrix (>= 2 required).
  std::vector<std::size_t> classes;
  std::size_t train_traces_per_class = 90;
  std::size_t test_traces_per_class = 40;
  /// Profiling program files; field captures reuse the same files so the
  /// matrix isolates the device axis (the paper's Sec. 5.6 protocol swaps
  /// only the chip).
  int num_programs = 10;
  /// Recalibration budgets, in traces per class.  0 means "no adaptation"
  /// and always reproduces the baseline accuracy.
  std::vector<std::size_t> budgets = {0, 1, 5, 10, 25};
  /// Also replace per-column standard deviations during re-normalization
  /// (noisy below ~10 traces/class; see FeaturePipeline::renormalized).
  bool renorm_rescale = false;
  /// Model recipe.  Must use a QDA classifier: recalibrated variants are
  /// cloned through the template serializer, which persists QDA levels.
  HierarchicalConfig model;
  sim::LeakageConfig leakage;
  sim::ScopeConfig scope;
  std::uint64_t seed = 0x51D15;
  /// Worker threads for field-classification sweeps (0 = auto).  Capture
  /// streams are keyed per (device, class), so results are bit-identical
  /// for any worker count.
  std::size_t eval_workers = 0;
};

/// One accuracy-vs-budget sample of the Table 4 sweep.
struct BudgetPoint {
  std::size_t budget_per_class = 0;
  double renorm_accuracy = 0.0;
  double refit_accuracy = 0.0;
};

/// One (train device, test device) cell of the transfer matrix.
struct TransferCell {
  int train_device = 0;
  int test_device = 0;
  /// Accuracy with profiling templates applied verbatim (budget 0).
  double baseline_accuracy = 0.0;
  std::vector<BudgetPoint> curve;
};

class TransferEvaluator {
 public:
  /// Profiles `train_device` and trains the transferable model.  Throws
  /// std::invalid_argument on fewer than 2 classes or a non-QDA classifier.
  TransferEvaluator(int train_device, TransferConfig config);

  /// Field + recalibration corpora captured on one deployment device.  Both
  /// sets are interleaved round-robin by class, so any prefix of
  /// K * classes() recalibration traces is class-balanced.
  struct FieldData {
    sim::TraceSet field;       ///< scoring corpus (labels in meta.class_idx)
    sim::TraceSet recal_pool;  ///< max-budget recalibration pool
  };
  FieldData capture_field(int test_device) const;

  /// First `per_class` recalibration traces of each class from an
  /// interleaved pool (clamped to what the pool holds).
  sim::TraceSet budget_slice(const sim::TraceSet& pool, std::size_t per_class) const;

  /// Clones the trained model and spends `recal` on the chosen adaptation.
  /// An empty corpus returns an untouched clone.
  HierarchicalDisassembler recalibrated(const sim::TraceSet& recal,
                                        RecalMode mode) const;

  /// Fraction of `field` windows whose predicted class matches the ground
  /// truth; parallel over traces, worker-count invariant.
  double accuracy(const HierarchicalDisassembler& model,
                  const sim::TraceSet& field) const;

  /// Full budget sweep against one deployment device.
  TransferCell evaluate(int test_device) const;

  const HierarchicalDisassembler& model() const { return model_; }
  const TransferConfig& config() const { return config_; }
  int train_device() const { return train_device_; }
  /// Profiling reference window a deployed monitor would carry.
  const std::vector<double>& reference_window() const { return reference_; }

 private:
  TransferConfig config_;
  int train_device_ = 0;
  ProfilingData profiling_;  ///< retained: the refit arm augments this corpus
  HierarchicalDisassembler model_;
  std::vector<double> reference_;
};

}  // namespace sidis::core

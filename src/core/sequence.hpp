// Sequence smoothing over recovered instruction streams -- the paper's
// stated future work ("this technique can be used with static code analysis
// in order to increase accuracy of real code", Sec. 6).
//
// Single-trace classification treats every instruction independently.  Real
// firmware is not a uniform draw over the ISA: compilers emit characteristic
// bigrams (CPI is followed by a branch, LDI pairs precede STS, a CP/CPC
// cascade implements wide compares...).  A first-order hidden-Markov view --
// per-window class log-likelihoods from the classifier as emissions, a
// bigram prior estimated from representative firmware as transitions --
// lets Viterbi decoding repair isolated misclassifications.
//
// Eisenbarth et al. [9] pioneered this combination; here it is provided as
// an optional post-processing stage on top of the hierarchical classifier.
#pragma once

#include <cstddef>
#include <vector>

#include "avr/program.hpp"
#include "linalg/matrix.hpp"

namespace sidis::core {

/// First-order instruction-class transition model with add-one smoothing.
class BigramPrior {
 public:
  /// `num_classes` states; counts start at `smoothing` (Laplace).
  explicit BigramPrior(std::size_t num_classes, double smoothing = 1.0);

  /// Accumulates transitions from a representative program's class sequence
  /// (instructions outside the profiled set are skipped).
  void add_program(const avr::Program& program);

  /// Accumulates one observed transition.
  void add_transition(std::size_t from, std::size_t to);

  /// log P(to | from) under the smoothed counts.
  double log_prob(std::size_t from, std::size_t to) const;

  std::size_t num_classes() const { return counts_.rows(); }

 private:
  linalg::Matrix counts_;
};

/// Viterbi decoding of a window sequence.
///
/// `emissions` holds one row per window; entry (t, c) is the classifier's
/// log-likelihood of class c for window t (e.g. ml::Qda::scores).  Returns
/// the maximum-a-posteriori class index sequence under the bigram prior,
/// weighting the prior by `prior_weight` (0 = pure per-window argmax).
std::vector<std::size_t> viterbi_decode(const linalg::Matrix& emissions,
                                        const BigramPrior& prior,
                                        double prior_weight = 1.0);

}  // namespace sidis::core

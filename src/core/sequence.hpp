// Sequence smoothing over recovered instruction streams -- the paper's
// stated future work ("this technique can be used with static code analysis
// in order to increase accuracy of real code", Sec. 6).
//
// Single-trace classification treats every instruction independently.  Real
// firmware is not a uniform draw over the ISA: compilers emit characteristic
// bigrams (CPI is followed by a branch, LDI pairs precede STS, a CP/CPC
// cascade implements wide compares...).  A first-order hidden-Markov view --
// per-window class log-posteriors from the classifier as emissions, a
// transition prior over instruction classes -- lets Viterbi decoding repair
// isolated misclassifications.
//
// Two priors are provided behind one interface:
//   * BigramPrior  -- transition counts estimated from representative
//                     firmware with Laplace smoothing (Eisenbarth et al. [9]).
//   * IsaPrior     -- a three-tier backoff blend: observed bigrams where the
//                     firmware corpus has evidence, Table-2 group structure
//                     as the middle tier, and ISA-derived structural
//                     plausibility (carry cascades, flag-use before
//                     branches, compiler idioms) as the floor -- replacing
//                     flat add-one smoothing with code-shaped mass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "avr/program.hpp"
#include "linalg/matrix.hpp"

namespace sidis::core {

/// Normalized log-probabilities: out[i] = s[i] - logsumexp(s).  Deterministic
/// (single max-shifted pass); exp(out) sums to 1 up to rounding.
linalg::Vector log_softmax(const linalg::Vector& s);

/// First-order transition model over instruction classes -- the contract the
/// Viterbi decoders consume.  Implementations must return finite values and
/// keep every row a proper distribution (sum_to exp(log_prob(from,to)) == 1).
class TransitionPrior {
 public:
  virtual ~TransitionPrior() = default;

  /// log P(to | from).
  virtual double log_prob(std::size_t from, std::size_t to) const = 0;

  /// Number of states (instruction classes).
  virtual std::size_t num_classes() const = 0;
};

/// First-order instruction-class transition model with add-one smoothing.
class BigramPrior : public TransitionPrior {
 public:
  /// `num_classes` states; counts start at `smoothing` (Laplace).
  explicit BigramPrior(std::size_t num_classes, double smoothing = 1.0);

  /// Accumulates transitions from a representative program's class sequence
  /// (instructions outside the profiled set are skipped).
  void add_program(const avr::Program& program);

  /// Accumulates one observed transition.
  void add_transition(std::size_t from, std::size_t to);

  /// log P(to | from) under the smoothed counts.
  double log_prob(std::size_t from, std::size_t to) const override;

  std::size_t num_classes() const override { return counts_.rows(); }

  /// Raw observed count (Laplace floor excluded) -- the evidence tier the
  /// IsaPrior blend recovers.
  double observed(std::size_t from, std::size_t to) const;

  /// Total observed transitions leaving `from` (Laplace floor excluded).
  double row_observed(std::size_t from) const;

  double smoothing() const { return smoothing_; }

 private:
  linalg::Matrix counts_;
  double smoothing_ = 1.0;
};

struct IsaPriorConfig {
  /// Blend weight of the firmware-observed bigram tier.  Rows with no
  /// observed transitions redistribute this weight to the remaining tiers.
  double observed_weight = 0.55;
  /// Blend weight of the Table-2 group-level backoff tier (observed counts
  /// aggregated per (group, group) pair, uniform within the target group).
  double group_weight = 0.25;
  /// Blend weight of the ISA structural tier.
  double isa_weight = 0.20;
  /// In the ISA tier, each structurally implausible successor receives
  /// `illegal_mass / num_classes` probability; the rest goes to plausible
  /// successors.  Must stay well below 1 so plausible transitions always
  /// dominate (strictly, within the ISA tier).
  double illegal_mass = 0.02;
  /// Multiplier on known compiler idioms within the plausible set (CP->CPC
  /// and ADD->ADC cascades, compare->branch, LDI pairs, skip->RJMP).
  double idiom_boost = 4.0;
};

/// ISA-structured transition prior over the full 112-class table.
///
/// Per row, three proper distributions are blended with per-row renormalized
/// weights:
///   observed tier -- raw bigram counts from a BigramPrior (skipped when the
///                    row carries no evidence);
///   group tier    -- the same counts aggregated over Table-2 groups with
///                    Laplace smoothing, spread uniformly within the target
///                    group (backoff: a CP->BRNE observation also lends mass
///                    to CP->BREQ);
///   ISA tier      -- structural plausibility from `src/avr`: carry
///                    consumers (ADC/SBC/SBCI/CPC/ROL/ROR) need a
///                    carry-writing predecessor, conditional branches need a
///                    predecessor that writes a flag they read, and
///                    control-flow instructions (jumps, branches, skips)
///                    impose nothing on their successor because the next
///                    window may be a branch target.  Implausible successors
///                    keep a small non-zero mass (this is a prior about
///                    compiler-emitted code, not a hard legality rule --
///                    flags do survive across unrelated instructions).
///
/// Within the ISA tier every plausible successor is strictly more probable
/// than every implausible one; in the default blend the same strict ordering
/// holds between successors sharing a target group and observation context.
class IsaPrior : public TransitionPrior {
 public:
  /// Structure-only prior (no firmware evidence: observed weight
  /// redistributes to the group + ISA tiers, the group tier falls back to
  /// its Laplace floor).
  explicit IsaPrior(IsaPriorConfig config = {});

  /// Blend with firmware-estimated bigram evidence.  `observed` must cover
  /// the full class table (num_classes() == avr::num_instruction_classes()).
  explicit IsaPrior(const BigramPrior& observed, IsaPriorConfig config = {});

  double log_prob(std::size_t from, std::size_t to) const override;
  std::size_t num_classes() const override { return log_probs_.rows(); }

  /// The ISA tier's structural judgment for a transition (exposed for the
  /// property tests).
  bool structurally_plausible(std::size_t from, std::size_t to) const;

  const IsaPriorConfig& config() const { return config_; }

 private:
  void build(const BigramPrior* observed);

  IsaPriorConfig config_;
  linalg::Matrix log_probs_;
  std::vector<std::uint8_t> plausible_;  ///< row-major n x n, 0/1
};

/// Viterbi decoding of a window sequence.
///
/// `emissions` holds one row per window; entry (t, c) is the classifier's
/// log-posterior (or any log-score) of class c for window t.  Returns the
/// maximum-a-posteriori class index sequence under the transition prior,
/// weighting the prior by `prior_weight` (0 = pure per-window argmax).
std::vector<std::size_t> viterbi_decode(const linalg::Matrix& emissions,
                                        const TransitionPrior& prior,
                                        double prior_weight = 1.0);

// -- basic-block recovery -----------------------------------------------
//
// A smoothed class stream segments into basic blocks at control-flow
// instructions, the same way the ground-truth program does; exact block
// matches measure whether sequence decoding recovers program *structure*,
// not just windows (extends the Sec-5.7 malware scenario to CFG level).

/// One recovered basic block: the window index of its first instruction and
/// the class sequence inside, terminator included.
struct BasicBlock {
  std::size_t begin = 0;
  std::vector<std::size_t> classes;

  friend bool operator==(const BasicBlock&, const BasicBlock&) = default;
};

/// True when the class may redirect control flow and therefore terminates a
/// basic block: group-4 jumps/branches, BRBS/BRBC, and the skip family
/// (CPSE/SBRC/SBRS/SBIC/SBIS).
bool ends_basic_block(std::size_t class_idx);

/// Cuts a class sequence after every block terminator.  The final block may
/// be terminator-less (stream ended mid-block).
std::vector<BasicBlock> segment_blocks(const std::vector<std::size_t>& classes);

/// Fraction of ground-truth blocks exactly recovered (same start window,
/// same class sequence).  Both streams must describe the same window
/// sequence; returns 1.0 when the truth stream has no blocks.
double block_recovery_rate(const std::vector<std::size_t>& decoded,
                           const std::vector<std::size_t>& truth);

}  // namespace sidis::core

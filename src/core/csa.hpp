// Covariate-shift adaptation (Sec. 4, 5.5, 5.6).
//
// CSA in the paper is a recipe, not a separate algorithm:
//   1. profile over more program files (9 -> 19) so within-class variation is
//      estimated against a richer set of measurement contexts;
//   2. tighten the not-varying threshold KL_th from 0.005 to 0.0005 (Eq. 4),
//      discarding feature points that move with the context;
//   3. normalize the selected feature values per trace, cancelling the
//      gain/offset a new program, session or device imposes.
// This header packages the three pipeline settings of Table 3 so the benches
// and examples can name them.
#pragma once

#include "features/pipeline.hpp"

namespace sidis::core {

/// The initial-experiment pipeline (Sec. 4): loose threshold, no per-trace
/// normalization.  Fails under covariate shift (Table 3 "Without CSA").
features::PipelineConfig without_csa_config();

/// CSA selection without the normalization step (Table 3 "Without Norm.").
features::PipelineConfig csa_without_norm_config();

/// Full CSA (Table 3 "With Norm."): tight threshold + per-trace
/// normalization.  This is the pipeline the headline results use.
features::PipelineConfig csa_config();

/// Paper constants, exposed for the benches.
inline constexpr double kInitialKlThreshold = 0.005;
inline constexpr double kCsaKlThreshold = 0.0005;
inline constexpr int kInitialProgramFiles = 10;
inline constexpr int kCsaProgramFiles = 19;

}  // namespace sidis::core

// Profiling-campaign orchestration: the simulated counterpart of the paper's
// MATLAB/Perl/TekVISA automation (Sec. 5.1) that walks every instruction
// class and register through the acquisition bench.
#pragma once

#include <functional>
#include <random>

#include "core/hierarchical.hpp"
#include "sim/acquisition.hpp"

namespace sidis::core {

struct ProfilerConfig {
  /// Traces per instruction class (the paper: 3000).
  std::size_t traces_per_class = 120;
  /// Traces per register class for the third level (paper: 3000).
  std::size_t traces_per_register = 200;
  /// Profiling program files per class (paper: 10, CSA: 19).
  int num_programs = 10;
  /// Which classes to profile; empty = all 112.
  std::vector<std::size_t> classes;
  /// Which registers to profile for Rd/Rr recovery; empty = r0..r31.
  std::vector<std::uint8_t> registers;
  /// Skip register profiling entirely (opcode-only disassembler).
  bool profile_registers = true;
  /// Worker threads for the campaign (0 = hardware concurrency, 1 = inline).
  /// Campaign items are independent captures, so they parallelize over a
  /// runtime::ThreadPool; each item draws from its own RNG stream derived
  /// from the caller's `rng`, making the corpus bit-identical for a fixed
  /// seed at ANY worker count.
  std::size_t workers = 0;
};

/// Called after each profiled class/register; `done`/`total` count campaign
/// items.  Return false to abort.  Invocations are serialized (never
/// concurrent) but arrive in completion order, which under parallel
/// profiling need not be campaign order.
using ProfilerProgress = std::function<bool(std::size_t done, std::size_t total,
                                            const std::string& item)>;

/// Runs the full acquisition campaign and assembles the profiling corpus the
/// hierarchical disassembler trains from.  `rng` only seeds the per-item
/// streams (one draw per campaign item), so its post-call state is
/// deterministic too.
ProfilingData profile_device(const sim::AcquisitionCampaign& campaign,
                             const ProfilerConfig& config, std::mt19937_64& rng,
                             const ProfilerProgress& progress = {});

}  // namespace sidis::core

#include "core/serialize.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sidis::core {

namespace {

constexpr const char* kMagic = "sidis-template";
// v2: per-level reject-gate thresholds appended to each level record.
// v3: pooled training moments (drift-monitor reference) appended after the
//     level records; v2 archives still load, with empty moments.
// v4: reject operating point (the named preset calibrate_reject ran at)
//     appended after the moments; older archives load as kCustom.
// v5: a "kind plain|fused" tag follows the header; fused archives carry the
//     per-level fusion selections, both channel models, and the joint
//     feature heads.  Pre-v5 archives (no tag) load as plain, and
//     load_fused_disassembler wraps any plain archive as power-only fusion.
constexpr int kVersion = 5;
constexpr int kOldestSupported = 2;

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("template archive corrupt: " + what);
}

void expect_tag(std::istream& is, const std::string& tag) {
  std::string got;
  if (!(is >> got) || got != tag) corrupt("expected '" + tag + "', got '" + got + "'");
}

void write_double(std::ostream& os, double v) {
  // Hex floats round-trip exactly and stay human-greppable.
  os << std::hexfloat << v << std::defaultfloat;
}

double read_double(std::istream& is) {
  std::string tok;
  if (!(is >> tok)) corrupt("truncated number");
  // std::hexfloat extraction is unreliable across standard libraries; strtod
  // handles the 0x1.abcp+n form everywhere.
  return std::strtod(tok.c_str(), nullptr);
}

std::size_t read_size(std::istream& is) {
  long long v = 0;
  if (!(is >> v) || v < 0) corrupt("bad size field");
  return static_cast<std::size_t>(v);
}

}  // namespace

void write_vector(std::ostream& os, const linalg::Vector& v) {
  os << "vec " << v.size();
  for (double x : v) {
    os << ' ';
    write_double(os, x);
  }
  os << '\n';
}

linalg::Vector read_vector(std::istream& is) {
  expect_tag(is, "vec");
  linalg::Vector v(read_size(is));
  for (double& x : v) x = read_double(is);
  return v;
}

void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  os << "mat " << m.rows() << ' ' << m.cols();
  for (double x : m.data()) {
    os << ' ';
    write_double(os, x);
  }
  os << '\n';
}

linalg::Matrix read_matrix(std::istream& is) {
  expect_tag(is, "mat");
  const std::size_t rows = read_size(is);
  const std::size_t cols = read_size(is);
  linalg::Matrix m(rows, cols);
  for (double& x : m.data()) x = read_double(is);
  return m;
}

namespace {

void write_pipeline_config(std::ostream& os, const features::PipelineConfig& c) {
  os << "pipeline_config " << static_cast<int>(c.cwt.family) << ' ' << c.cwt.num_scales
     << ' ';
  write_double(os, c.cwt.min_scale);
  os << ' ';
  write_double(os, c.cwt.max_scale);
  os << ' ' << (c.cwt.log_spacing ? 1 : 0) << ' ';
  write_double(os, c.cwt.kernel_radius);
  os << ' ';
  write_double(os, c.kl_threshold);
  os << ' ' << c.points_per_pair << ' ' << (c.adaptive_threshold ? 1 : 0) << ' '
     << (c.per_trace_normalization ? 1 : 0) << ' ' << (c.column_standardization ? 1 : 0)
     << ' ' << c.pca_components << ' ' << (c.allow_fallback_points ? 1 : 0) << '\n';
}

features::PipelineConfig read_pipeline_config(std::istream& is) {
  expect_tag(is, "pipeline_config");
  features::PipelineConfig c;
  int family = 0;
  is >> family;
  c.cwt.family = static_cast<dsp::WaveletFamily>(family);
  c.cwt.num_scales = read_size(is);
  c.cwt.min_scale = read_double(is);
  c.cwt.max_scale = read_double(is);
  c.cwt.log_spacing = read_size(is) != 0;
  c.cwt.kernel_radius = read_double(is);
  c.kl_threshold = read_double(is);
  c.points_per_pair = read_size(is);
  c.adaptive_threshold = read_size(is) != 0;
  c.per_trace_normalization = read_size(is) != 0;
  c.column_standardization = read_size(is) != 0;
  c.pca_components = read_size(is);
  c.allow_fallback_points = read_size(is) != 0;
  return c;
}

}  // namespace

void save_pipeline(std::ostream& os, const features::FeaturePipeline& pipeline) {
  os << "pipeline\n";
  write_pipeline_config(os, pipeline.config());
  os << "grid " << pipeline.grid_size() << '\n';
  os << "points " << pipeline.unified_points().size() << '\n';
  for (const stats::GridPoint& p : pipeline.unified_points()) {
    os << p.j << ' ' << p.k << ' ';
    write_double(os, p.value);
    os << '\n';
  }
  // The scaler is stored even when column standardization is off (it is then
  // empty and unused).
  os << "scaler\n";
  write_vector(os, pipeline.scaler().mean());
  write_vector(os, pipeline.scaler().stddev());
  os << "pca\n";
  write_vector(os, pipeline.pca().mean());
  write_vector(os, pipeline.pca().eigenvalues());
  write_matrix(os, pipeline.pca().components());
  write_double(os, pipeline.pca().total_variance());
  os << '\n';
}

features::FeaturePipeline load_pipeline(std::istream& is) {
  expect_tag(is, "pipeline");
  const features::PipelineConfig cfg = read_pipeline_config(is);
  expect_tag(is, "grid");
  const std::size_t grid = read_size(is);
  expect_tag(is, "points");
  std::vector<stats::GridPoint> points(read_size(is));
  for (stats::GridPoint& p : points) {
    p.j = read_size(is);
    p.k = read_size(is);
    p.value = read_double(is);
  }
  expect_tag(is, "scaler");
  linalg::Vector sm = read_vector(is);
  linalg::Vector ss = read_vector(is);
  expect_tag(is, "pca");
  linalg::Vector mean = read_vector(is);
  linalg::Vector eig = read_vector(is);
  linalg::Matrix comp = read_matrix(is);
  const double total = read_double(is);

  stats::ColumnScaler scaler;
  if (!sm.empty()) scaler = stats::ColumnScaler::from_parts(std::move(sm), std::move(ss));
  return features::FeaturePipeline::from_parts(
      cfg, std::move(points), std::move(scaler),
      stats::Pca::from_parts(std::move(mean), std::move(eig), std::move(comp), total),
      grid);
}

void save_qda(std::ostream& os, const ml::Qda& qda) {
  os << "qda " << qda.labels().size() << '\n';
  for (std::size_t c = 0; c < qda.labels().size(); ++c) {
    os << "class " << qda.labels()[c] << ' ';
    write_double(os, qda.log_priors()[c]);
    os << '\n';
    write_vector(os, qda.models()[c].mean());
    write_matrix(os, qda.models()[c].covariance());
  }
}

ml::Qda load_qda(std::istream& is) {
  expect_tag(is, "qda");
  const std::size_t n = read_size(is);
  std::vector<int> labels(n);
  std::vector<stats::MultivariateGaussian> models;
  std::vector<double> priors(n);
  models.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    expect_tag(is, "class");
    if (!(is >> labels[c])) corrupt("bad class label");
    priors[c] = read_double(is);
    linalg::Vector mean = read_vector(is);
    linalg::Matrix cov = read_matrix(is);
    models.push_back(
        stats::MultivariateGaussian::from_moments(std::move(mean), std::move(cov), 0.0));
  }
  return ml::Qda::from_parts(std::move(labels), std::move(models), std::move(priors));
}

namespace {

/// Reads the archive header; returns the version and leaves `kind` holding
/// "plain" or "fused" (pre-v5 archives carry no tag and read as "plain").
int read_header(std::istream& is, std::string& kind) {
  expect_tag(is, kMagic);
  const std::size_t version = read_size(is);
  if (version < static_cast<std::size_t>(kOldestSupported) ||
      version > static_cast<std::size_t>(kVersion)) {
    corrupt("unsupported version");
  }
  kind = "plain";
  if (version >= 5) {
    expect_tag(is, "kind");
    if (!(is >> kind) || (kind != "plain" && kind != "fused")) {
      corrupt("unknown archive kind");
    }
  }
  return static_cast<int>(version);
}

}  // namespace

void save_disassembler(std::ostream& os, const HierarchicalDisassembler& model) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "kind plain\n";
  model.save(os);
}

HierarchicalDisassembler load_disassembler(std::istream& is) {
  std::string kind;
  const int version = read_header(is, kind);
  if (kind == "fused") {
    corrupt("archive holds a fused model; use load_fused_disassembler");
  }
  return HierarchicalDisassembler::load(is, version);
}

void save_fused_disassembler(std::ostream& os, const FusedDisassembler& model) {
  if (model.power_model() == nullptr) {
    throw std::invalid_argument("save_fused_disassembler: empty model");
  }
  os << kMagic << ' ' << kVersion << '\n';
  os << "kind fused\n";
  const auto write_fusion = [&os](const char* tag, const LevelFusion& f) {
    os << "fusion " << tag << ' ' << static_cast<int>(f.mode) << ' ';
    write_double(os, f.power_weight);
    os << ' ';
    write_double(os, f.em_weight);
    os << '\n';
  };
  write_fusion("group", model.group_fusion());
  write_fusion("instruction", model.instruction_fusion());
  os << "channel power\n";
  model.power_model()->save(os);
  os << "has_em " << (model.em_model() != nullptr ? 1 : 0) << '\n';
  if (model.em_model() != nullptr) {
    os << "channel em\n";
    model.em_model()->save(os);
  }
  os << "group_head " << (model.group_head_ != nullptr ? 1 : 0) << '\n';
  if (model.group_head_ != nullptr) save_qda(os, *model.group_head_);
  os << "instruction_heads " << model.instruction_heads_.size() << '\n';
  for (const auto& [group, head] : model.instruction_heads_) {
    os << "head_group " << group << '\n';
    save_qda(os, *head);
  }
}

FusedDisassembler load_fused_disassembler(std::istream& is) {
  std::string kind;
  const int version = read_header(is, kind);
  if (kind == "plain") {
    // Legacy / single-channel archive: power-only fusion.
    auto power = std::make_shared<const HierarchicalDisassembler>(
        HierarchicalDisassembler::load(is, version));
    return FusedDisassembler(std::move(power), nullptr);
  }
  const auto read_fusion = [&is](const char* tag) {
    expect_tag(is, "fusion");
    expect_tag(is, tag);
    LevelFusion f;
    const std::size_t mode = read_size(is);
    if (mode > static_cast<std::size_t>(FusionMode::kFeature)) {
      corrupt("unknown fusion mode");
    }
    f.mode = static_cast<FusionMode>(mode);
    f.power_weight = read_double(is);
    f.em_weight = read_double(is);
    return f;
  };
  const LevelFusion group = read_fusion("group");
  const LevelFusion instruction = read_fusion("instruction");
  expect_tag(is, "channel");
  expect_tag(is, "power");
  auto power = std::make_shared<const HierarchicalDisassembler>(
      HierarchicalDisassembler::load(is, version));
  expect_tag(is, "has_em");
  std::shared_ptr<const HierarchicalDisassembler> em;
  if (read_size(is) != 0) {
    expect_tag(is, "channel");
    expect_tag(is, "em");
    em = std::make_shared<const HierarchicalDisassembler>(
        HierarchicalDisassembler::load(is, version));
  }
  FusedDisassembler fused(std::move(power), std::move(em), group, instruction);
  expect_tag(is, "group_head");
  if (read_size(is) != 0) {
    fused.group_head_ = std::make_unique<ml::Qda>(load_qda(is));
  }
  expect_tag(is, "instruction_heads");
  const std::size_t n = read_size(is);
  for (std::size_t i = 0; i < n; ++i) {
    expect_tag(is, "head_group");
    int group_id = 0;
    if (!(is >> group_id)) corrupt("bad head group id");
    fused.instruction_heads_[group_id] = std::make_unique<ml::Qda>(load_qda(is));
  }
  return fused;
}

// -- hierarchical model ------------------------------------------------------

void HierarchicalDisassembler::save(std::ostream& os) const {
  const auto save_level = [&os](const Level& level) {
    os << "level " << (level.trivial ? 1 : 0) << ' ' << level.only_label << ' '
       << level.components << '\n';
    os << "gate " << (level.gate.active ? 1 : 0) << ' ';
    write_double(os, level.gate.margin_floor);
    os << ' ';
    write_double(os, level.gate.score_floor);
    os << '\n';
    if (level.trivial) return;
    const auto* qda = dynamic_cast<const ml::Qda*>(level.classifier.get());
    if (qda == nullptr) {
      throw std::invalid_argument(
          "HierarchicalDisassembler::save: only QDA levels are persistable");
    }
    save_pipeline(os, level.pipeline);
    save_qda(os, *qda);
  };

  os << "group_level\n";
  save_level(group_level_);
  os << "instruction_levels " << instruction_levels_.size() << '\n';
  for (const auto& [group, level] : instruction_levels_) {
    os << "group " << group << '\n';
    save_level(level);
  }
  os << "rd_level " << (rd_level_ ? 1 : 0) << '\n';
  if (rd_level_) save_level(*rd_level_);
  os << "rr_level " << (rr_level_ ? 1 : 0) << '\n';
  if (rr_level_) save_level(*rr_level_);
  // v3 trailer: training moments (empty vectors when the model has none, so
  // clone-through-serializer round-trips preserve "no moments" faithfully).
  os << "training_moments " << training_moments_.count << '\n';
  write_vector(os, training_moments_.mean);
  write_vector(os, training_moments_.variance);
  // v4 trailer: the reject operating point the gates were calibrated at.
  os << "reject_point " << static_cast<int>(reject_point_) << '\n';
}

HierarchicalDisassembler HierarchicalDisassembler::load(std::istream& is, int version) {
  const auto load_level = [&is]() {
    Level level;
    expect_tag(is, "level");
    const bool trivial = read_size(is) != 0;
    if (!(is >> level.only_label)) corrupt("bad level label");
    level.components = read_size(is);
    level.trivial = trivial;
    expect_tag(is, "gate");
    level.gate.active = read_size(is) != 0;
    level.gate.margin_floor = read_double(is);
    level.gate.score_floor = read_double(is);
    if (!trivial) {
      level.pipeline = load_pipeline(is);
      level.classifier = std::make_unique<ml::Qda>(load_qda(is));
    }
    return level;
  };

  HierarchicalDisassembler d;
  expect_tag(is, "group_level");
  d.group_level_ = load_level();
  expect_tag(is, "instruction_levels");
  const std::size_t n = read_size(is);
  for (std::size_t i = 0; i < n; ++i) {
    expect_tag(is, "group");
    int group = 0;
    if (!(is >> group)) corrupt("bad group id");
    d.instruction_levels_[group] = load_level();
  }
  expect_tag(is, "rd_level");
  if (read_size(is) != 0) d.rd_level_ = std::make_unique<Level>(load_level());
  expect_tag(is, "rr_level");
  if (read_size(is) != 0) d.rr_level_ = std::make_unique<Level>(load_level());
  if (version >= 3) {
    expect_tag(is, "training_moments");
    d.training_moments_.count = static_cast<std::uint64_t>(read_size(is));
    d.training_moments_.mean = read_vector(is);
    d.training_moments_.variance = read_vector(is);
    if (d.training_moments_.mean.size() != d.training_moments_.variance.size()) {
      corrupt("training-moments size mismatch");
    }
  }
  if (version >= 4) {
    expect_tag(is, "reject_point");
    const std::size_t point = read_size(is);
    if (point > static_cast<std::size_t>(RejectOperatingPoint::kCustom)) {
      corrupt("unknown reject operating point");
    }
    d.reject_point_ = static_cast<RejectOperatingPoint>(point);
  } else {
    // Pre-v4 archives never recorded how the gates were calibrated.
    d.reject_point_ = RejectOperatingPoint::kCustom;
  }
  // Archives carry QDA levels, whose label lists recover the posterior
  // support exactly; no format change needed for classify_scored.
  d.finalize_posterior_support();
  return d;
}

}  // namespace sidis::core

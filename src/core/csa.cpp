#include "core/csa.hpp"

namespace sidis::core {

features::PipelineConfig without_csa_config() {
  features::PipelineConfig c;
  c.kl_threshold = kInitialKlThreshold;
  c.per_trace_normalization = false;
  // The initial experiment applies the 0.005 threshold literally.  With only
  // ~10 profiling programs the empirical within-class KL never gets below
  // its own estimator bias (~2/n per program pair), so the criterion cannot
  // bind and selection degenerates to between-class KL alone (the fallback
  // path) -- which is precisely why the paper's Sec.-4 experiment picks
  // context-sensitive features and collapses on a real program.
  c.adaptive_threshold = false;
  c.allow_fallback_points = true;
  return c;
}

features::PipelineConfig csa_without_norm_config() {
  features::PipelineConfig c;
  c.kl_threshold = kCsaKlThreshold;
  c.per_trace_normalization = false;
  return c;
}

features::PipelineConfig csa_config() {
  features::PipelineConfig c;
  c.kl_threshold = kCsaKlThreshold;
  c.per_trace_normalization = true;
  return c;
}

}  // namespace sidis::core

#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sidis::linalg {

EigenDecomposition eigen_symmetric(const Matrix& a_in, int max_sweeps, double tol) {
  if (a_in.rows() != a_in.cols()) {
    throw std::invalid_argument("eigen_symmetric: non-square matrix");
  }
  const std::size_t n = a_in.rows();
  EigenDecomposition out;
  if (n == 0) {
    out.converged = true;
    return out;
  }

  // Symmetrize to guard against accumulation asymmetry.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));
  }
  Matrix v = Matrix::identity(n);

  const double scale = std::max(a.max_abs(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm decides convergence.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (std::sqrt(off) <= tol * scale * static_cast<double>(n)) {
      out.converged = true;
      out.sweeps = sweep;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tol * scale) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic stable rotation computation (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    out.sweeps = sweep + 1;
  }
  if (!out.converged) {
    // Jacobi always converges in theory; in the rare stalled case the partial
    // result is still the best rotation found, so expose it but flag it.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    out.converged = std::sqrt(off) <= 1e-6 * scale * static_cast<double>(n);
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = diag[order[c]];
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

}  // namespace sidis::linalg

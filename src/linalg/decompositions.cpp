#include "linalg/decompositions.hpp"

#include "linalg/lanes.hpp"

#include <cmath>
#include <stdexcept>

namespace sidis::linalg {

Cholesky Cholesky::compute(const Matrix& a) {
  Cholesky out;
  if (a.rows() != a.cols()) return out;
  const std::size_t n = a.rows();
  out.l = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= out.l(j, k) * out.l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return out;  // not SPD
    const double ljj = std::sqrt(diag);
    out.l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= out.l(i, k) * out.l(j, k);
      out.l(i, j) = acc / ljj;
    }
  }
  out.valid = true;
  return out;
}

Vector Cholesky::solve(const Vector& b) const {
  if (!valid) throw std::runtime_error("Cholesky::solve on invalid factorization");
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {  // forward: L y = b
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {  // backward: L^T x = y
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

double Cholesky::log_det() const {
  if (!valid) throw std::runtime_error("Cholesky::log_det on invalid factorization");
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

double Cholesky::mahalanobis_squared(const Vector& x) const {
  if (!valid) throw std::runtime_error("Cholesky::mahalanobis on invalid factorization");
  // x^T (L L^T)^{-1} x = ||L^{-1} x||^2; one forward substitution suffices.
  const std::size_t n = l.rows();
  if (x.size() != n) throw std::invalid_argument("Cholesky::mahalanobis: size mismatch");
  double acc = 0.0;
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
    acc += y[i] * y[i];
  }
  return acc;
}

void Cholesky::mahalanobis_squared_batch(const Matrix& x_cols, std::span<double> out,
                                         Matrix& y) const {
  if (!valid) throw std::runtime_error("Cholesky::mahalanobis on invalid factorization");
  const std::size_t n = l.rows();
  const std::size_t lanes = x_cols.cols();
  if (x_cols.rows() != n || out.size() != lanes) {
    throw std::invalid_argument("Cholesky::mahalanobis: size mismatch");
  }
  if (y.rows() != n || y.cols() != lanes) y = Matrix(n, lanes);
  // Mirror of the scalar routine lane-parallel: for each lane, v starts at
  // x[i], subtracts l(i,k) * y[k] in ascending k, divides by the diagonal,
  // and squares into the running sum -- the identical operation sequence, so
  // each lane's result matches the scalar call.  Full LaneTile blocks keep
  // row i's partial sums in registers across the k loop (see lanes.hpp);
  // the squared-sum accumulates through `out` once per row i, which is cheap
  // at that frequency.  The sub-tile remainder keeps the lane-innermost form.
  for (std::size_t l2 = 0; l2 < lanes; ++l2) out[l2] = 0.0;
  std::size_t l0 = 0;
  for (; l0 + kLaneTile <= lanes; l0 += kLaneTile) {
    for (std::size_t i = 0; i < n; ++i) {
      LaneTile v;
      v.load(x_cols.row(i).data() + l0);
      for (std::size_t k = 0; k < i; ++k) {
        v.mul_sub(l(i, k), y.row(k).data() + l0);
      }
      v.div(l(i, i));
      double* __restrict yrow = y.row(i).data() + l0;
      v.store(yrow);
      double* __restrict orow = out.data() + l0;
      for (std::size_t u = 0; u < kLaneTile; ++u) orow[u] += yrow[u] * yrow[u];
    }
  }
  if (l0 < lanes) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* __restrict xrow = x_cols.row(i).data();
      double* __restrict yrow = y.row(i).data();
      for (std::size_t l2 = l0; l2 < lanes; ++l2) yrow[l2] = xrow[l2];
      for (std::size_t k = 0; k < i; ++k) {
        const double lik = l(i, k);
        const double* __restrict ykrow = y.row(k).data();
        for (std::size_t l2 = l0; l2 < lanes; ++l2) yrow[l2] -= lik * ykrow[l2];
      }
      const double diag = l(i, i);
      for (std::size_t l2 = l0; l2 < lanes; ++l2) {
        yrow[l2] /= diag;
        out[l2] += yrow[l2] * yrow[l2];
      }
    }
  }
}

Lu Lu::compute(const Matrix& a) {
  Lu out;
  if (a.rows() != a.cols()) return out;
  const std::size_t n = a.rows();
  out.lu = a;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // pivot selection
    std::size_t pivot = col;
    double best = std::abs(out.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(out.lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300 || !std::isfinite(best)) return out;  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(out.lu(pivot, c), out.lu(col, c));
      std::swap(out.perm[pivot], out.perm[col]);
      out.sign = -out.sign;
    }
    const double d = out.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = out.lu(r, col) / d;
      out.lu(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) out.lu(r, c) -= f * out.lu(col, c);
    }
  }
  out.valid = true;
  return out;
}

Vector Lu::solve(const Vector& b) const {
  if (!valid) throw std::runtime_error("Lu::solve on invalid factorization");
  const std::size_t n = lu.rows();
  if (b.size() != n) throw std::invalid_argument("Lu::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {  // L y = P b
    double acc = b[perm[i]];
    for (std::size_t k = 0; k < i; ++k) acc -= lu(i, k) * y[k];
    y[i] = acc;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {  // U x = y
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= lu(ii, k) * x[k];
    x[ii] = acc / lu(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  Matrix out(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector x = solve(b.col_vector(c));
    for (std::size_t r = 0; r < b.rows(); ++r) out(r, c) = x[r];
  }
  return out;
}

double Lu::determinant() const {
  if (!valid) return 0.0;
  double det = static_cast<double>(sign);
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

Matrix Lu::inverse() const {
  if (!valid) throw std::runtime_error("Lu::inverse on singular matrix");
  return solve(Matrix::identity(lu.rows()));
}

Matrix inverse(const Matrix& a) {
  const Lu f = Lu::compute(a);
  if (!f.valid) throw std::runtime_error("inverse: matrix is singular");
  return f.inverse();
}

Vector solve(const Matrix& a, const Vector& b) {
  const Lu f = Lu::compute(a);
  if (!f.valid) throw std::runtime_error("solve: matrix is singular");
  return f.solve(b);
}

Matrix regularized(const Matrix& a, double lambda) {
  Matrix out = a;
  for (std::size_t i = 0; i < std::min(a.rows(), a.cols()); ++i) out(i, i) += lambda;
  return out;
}

}  // namespace sidis::linalg

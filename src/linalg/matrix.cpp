#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace sidis::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    std::copy(rows[r].begin(), rows[r].end(), m.data_.begin() + static_cast<std::ptrdiff_t>(r * m.cols_));
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Vector Matrix::row_vector(std::size_t r) const {
  auto s = row(r);
  return Vector(s.begin(), s.end());
}

Vector Matrix::col_vector(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

namespace {
void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix: shape mismatch in ") + op);
  }
}
}  // namespace

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "+");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "-");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix: shape mismatch in product");
  Matrix out(rows_, rhs.cols_, 0.0);
  // i-k-j loop order keeps the innermost accesses contiguous for both
  // operands, which matters for the 15k-point KL maps.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = rhs.data_.data() + k * rhs.cols_;
      double* orow = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix: shape mismatch in mat-vec");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* mrow = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += mrow[c] * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::trace() const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::trace: non-square");
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

bool Matrix::approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    if (std::abs(a.data_[i] - b.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    os << (r + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

namespace {
void check_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vector: size mismatch in ") + op);
  }
}
}  // namespace

Vector add(const Vector& a, const Vector& b) {
  check_same_size(a, b, "add");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  check_same_size(a, b, "sub");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double dot(const Vector& a, const Vector& b) {
  check_same_size(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

double squared_distance(const Vector& a, const Vector& b) {
  check_same_size(a, b, "squared_distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

Vector row_mean(const Matrix& m) {
  if (m.rows() == 0) throw std::invalid_argument("row_mean: empty matrix");
  Vector mean(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) mean[c] += row[c];
  }
  const double inv = 1.0 / static_cast<double>(m.rows());
  for (double& v : mean) v *= inv;
  return mean;
}

Matrix row_covariance(const Matrix& m) {
  if (m.rows() < 2) throw std::invalid_argument("row_covariance: need at least 2 rows");
  const Vector mean = row_mean(m);
  Matrix cov(m.cols(), m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t i = 0; i < m.cols(); ++i) {
      const double di = row[i] - mean[i];
      for (std::size_t j = i; j < m.cols(); ++j) {
        cov(i, j) += di * (row[j] - mean[j]);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(m.rows() - 1);
  for (std::size_t i = 0; i < m.cols(); ++i) {
    for (std::size_t j = i; j < m.cols(); ++j) {
      cov(i, j) *= inv;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

Matrix outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

}  // namespace sidis::linalg

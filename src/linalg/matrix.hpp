// Dense row-major matrix and vector utilities.
//
// This is the numerical substrate for PCA, LDA/QDA and the Gaussian template
// machinery.  It is deliberately small and dependency-free: the dimensions in
// the disassembler pipeline are modest (feature vectors of a few hundred
// entries, class counts below a few dozen), so clarity and numerical
// robustness matter more than BLAS-level throughput.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace sidis::linalg {

/// Dense vector of doubles.  A bare alias keeps interop with the rest of the
/// codebase trivial (traces, feature vectors and matrix rows all share it).
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Invariants: `data_.size() == rows_ * cols_` always holds; a
/// default-constructed matrix is the unique 0x0 empty matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows` x `cols` matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from a nested brace list; every inner list must have
  /// the same length.  Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  /// Builds a matrix whose rows are the given vectors (all must share the
  /// same length).  Used to assemble sample matrices from feature vectors.
  static Matrix from_rows(const std::vector<Vector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Mutable / immutable view of row `r` (contiguous in memory).
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  /// Copies of a single row / column as vectors.
  Vector row_vector(std::size_t r) const;
  Vector col_vector(std::size_t c) const;

  /// Raw storage (row-major).
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  Matrix transposed() const;

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(const Matrix& rhs) const;  ///< matrix product
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Matrix-vector product; `v.size()` must equal `cols()`.
  Vector operator*(const Vector& v) const;

  bool operator==(const Matrix& rhs) const = default;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Largest absolute entry; 0 for the empty matrix.
  double max_abs() const;

  /// Sum of diagonal entries (matrix must be square).
  double trace() const;

  /// True when `|a(i,j) - b(i,j)| <= tol` for all entries and shapes match.
  static bool approx_equal(const Matrix& a, const Matrix& b, double tol);

  /// Human-readable dump for diagnostics (not round-trippable).
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector helpers (used throughout the pipeline) -------------------

/// Element-wise a + b; sizes must match.
Vector add(const Vector& a, const Vector& b);
/// Element-wise a - b; sizes must match.
Vector sub(const Vector& a, const Vector& b);
/// Scalar multiple.
Vector scale(const Vector& a, double s);
/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);
/// Euclidean norm.
double norm(const Vector& a);
/// Squared Euclidean distance between two vectors.
double squared_distance(const Vector& a, const Vector& b);

/// Arithmetic mean of the rows of `m` (length = cols).
Vector row_mean(const Matrix& m);

/// Sample covariance of the rows of `m` (denominator n-1; n must be >= 2).
Matrix row_covariance(const Matrix& m);

/// Outer product a * b^T.
Matrix outer(const Vector& a, const Vector& b);

}  // namespace sidis::linalg

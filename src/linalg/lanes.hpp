#pragma once

#include <cstddef>
#include <cstring>

namespace sidis::linalg {

/// Register-tile primitive for lane-parallel (struct-of-arrays) inner loops.
///
/// A LaneTile holds kLaneTile per-lane accumulators in vector registers and
/// exposes only elementwise operations, so each lane's IEEE arithmetic -- and
/// therefore its bits -- matches the corresponding scalar loop exactly.  The
/// point of the tile is WHERE the accumulators live: a lane-innermost loop
/// with memory accumulators re-loads and re-stores every partial sum on every
/// step and runs at store throughput; keeping a tile of lanes in registers
/// across the whole reduction runs at multiply-add throughput instead
/// (measured ~1.5-1.7x on the sparse CWT gather at baseline x86-64).
///
/// GNU vector extensions compile to whatever vector ISA the target offers
/// (SSE2 on baseline x86-64, AVX/AVX-512 under SIDIS_NATIVE, NEON on
/// aarch64) without arch-specific intrinsics; other compilers fall back to a
/// plain array the auto-vectorizer can still chew on.  The vector width is
/// pinned at compile time to the native register width -- wider generic
/// vectors get scalarized through the stack at baseline arch, which is
/// slower than not tiling at all.
#if defined(__GNUC__) || defined(__clang__)
#define SIDIS_LANE_VEC 1
#if defined(__AVX512F__)
#define SIDIS_LANE_VEC_BYTES 64
#elif defined(__AVX__)
#define SIDIS_LANE_VEC_BYTES 32
#else
#define SIDIS_LANE_VEC_BYTES 16
#endif
#endif

/// Lanes covered by one LaneTile.  16 matches the serving runtime's
/// batch_max, so a saturated fleet batch is exactly one tile.
inline constexpr std::size_t kLaneTile = 16;

#ifdef SIDIS_LANE_VEC

namespace lane_detail {
typedef double LaneVec __attribute__((vector_size(SIDIS_LANE_VEC_BYTES)));
inline constexpr std::size_t kVecWidth = SIDIS_LANE_VEC_BYTES / sizeof(double);
inline constexpr std::size_t kVecCount = kLaneTile / kVecWidth;

inline LaneVec splat(double s) {
  LaneVec v;
  for (std::size_t i = 0; i < kVecWidth; ++i) v[i] = s;
  return v;
}
}  // namespace lane_detail

struct LaneTile {
  lane_detail::LaneVec v[lane_detail::kVecCount] = {};

  void load(const double* p) { std::memcpy(v, p, sizeof(v)); }
  void store(double* p) const { std::memcpy(p, v, sizeof(v)); }

  /// v[l] += s * x[l] for each lane l.
  void mul_add(double s, const double* x) {
    const lane_detail::LaneVec sv = lane_detail::splat(s);
    for (std::size_t i = 0; i < lane_detail::kVecCount; ++i) {
      lane_detail::LaneVec xv;
      std::memcpy(&xv, x + i * lane_detail::kVecWidth, sizeof(xv));
      v[i] += sv * xv;
    }
  }

  /// v[l] -= s * x[l] for each lane l.
  void mul_sub(double s, const double* x) {
    const lane_detail::LaneVec sv = lane_detail::splat(s);
    for (std::size_t i = 0; i < lane_detail::kVecCount; ++i) {
      lane_detail::LaneVec xv;
      std::memcpy(&xv, x + i * lane_detail::kVecWidth, sizeof(xv));
      v[i] -= sv * xv;
    }
  }

  /// v[l] /= s for each lane l (a true division -- scalar paths divide, and
  /// multiplying by a reciprocal would round differently).
  void div(double s) {
    const lane_detail::LaneVec sv = lane_detail::splat(s);
    for (std::size_t i = 0; i < lane_detail::kVecCount; ++i) v[i] /= sv;
  }
};

#else  // !SIDIS_LANE_VEC: plain array, auto-vectorization only

struct LaneTile {
  double v[kLaneTile] = {};

  void load(const double* p) { std::memcpy(v, p, sizeof(v)); }
  void store(double* p) const { std::memcpy(p, v, sizeof(v)); }

  void mul_add(double s, const double* x) {
    for (std::size_t l = 0; l < kLaneTile; ++l) v[l] += s * x[l];
  }
  void mul_sub(double s, const double* x) {
    for (std::size_t l = 0; l < kLaneTile; ++l) v[l] -= s * x[l];
  }
  void div(double s) {
    for (std::size_t l = 0; l < kLaneTile; ++l) v[l] /= s;
  }
};

#endif  // SIDIS_LANE_VEC

}  // namespace sidis::linalg

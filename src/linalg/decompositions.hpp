// Matrix factorizations used by the classifiers.
//
// QDA needs, per class, the log-determinant of the covariance and fast solves
// against it; LDA needs the same for the pooled covariance.  Cholesky covers
// the symmetric positive-definite case and LU (partial pivoting) the general
// one.  Both report failure through a `valid` flag rather than exceptions so
// callers can fall back to regularization when a covariance is singular —
// which genuinely happens in this pipeline when the number of training traces
// is close to the feature dimension.
#pragma once

#include "linalg/matrix.hpp"

namespace sidis::linalg {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite A.
struct Cholesky {
  Matrix l;          ///< lower-triangular factor (valid only if `valid`)
  bool valid = false;

  /// Attempts the factorization; `valid` is false when A is not (numerically)
  /// positive definite.
  static Cholesky compute(const Matrix& a);

  /// Solves A x = b via forward/back substitution.
  Vector solve(const Vector& b) const;

  /// log(det A) = 2 * sum(log L(i,i)).  Requires `valid`.
  double log_det() const;

  /// Squared Mahalanobis distance x^T A^{-1} x for A = L L^T.
  double mahalanobis_squared(const Vector& x) const;

  /// Lane-blocked Mahalanobis over a struct-of-arrays batch: `x_cols` is
  /// (n x lanes) with columns as vectors, out[l] = mahalanobis_squared of
  /// column l.  One forward substitution sweeps all lanes -- each row of L
  /// loads once per batch instead of once per vector and the inner loops
  /// vectorize across lanes -- while every lane keeps the scalar
  /// accumulation order, so the results are bit-identical.  `y` is grow-once
  /// caller scratch (resized to n x lanes).
  void mahalanobis_squared_batch(const Matrix& x_cols, std::span<double> out,
                                 Matrix& y) const;
};

/// LU factorization with partial pivoting: P A = L U.
struct Lu {
  Matrix lu;                    ///< packed L (unit diag, below) and U (above+diag)
  std::vector<std::size_t> perm;
  int sign = 1;                 ///< permutation parity, for determinant
  bool valid = false;           ///< false when A is numerically singular

  static Lu compute(const Matrix& a);

  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;
  double determinant() const;
  Matrix inverse() const;
};

/// Convenience: A^{-1} via LU; throws std::runtime_error if singular.
Matrix inverse(const Matrix& a);

/// Convenience: solve A x = b via LU; throws std::runtime_error if singular.
Vector solve(const Matrix& a, const Vector& b);

/// Adds `lambda` to the diagonal (Tikhonov / shrinkage regularization).
Matrix regularized(const Matrix& a, double lambda);

}  // namespace sidis::linalg

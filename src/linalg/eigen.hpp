// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// PCA (Sec. 3.2 of the paper) needs the full spectrum of a covariance matrix
// whose dimension is the number of selected KL feature points (about 200 after
// the 98.7% reduction the paper reports).  Cyclic Jacobi is simple, provably
// convergent for symmetric matrices, and at n~200 it is comfortably fast.
#pragma once

#include "linalg/matrix.hpp"

namespace sidis::linalg {

/// Result of a symmetric eigendecomposition A = V diag(values) V^T.
struct EigenDecomposition {
  Vector values;   ///< eigenvalues, sorted descending
  Matrix vectors;  ///< eigenvectors as columns, matching `values` order
  int sweeps = 0;  ///< Jacobi sweeps used (diagnostic)
  bool converged = false;
};

/// Computes all eigenpairs of symmetric `a`.
///
/// `a` is symmetrized internally (averaging with the transpose) to shrug off
/// the last-bit asymmetry that covariance accumulation produces.  Throws
/// std::invalid_argument on non-square input.
EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64,
                                   double tol = 1e-12);

}  // namespace sidis::linalg
